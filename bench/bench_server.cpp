// Wire-protocol session throughput: C concurrent clients each drive whole
// sessions against one PragueServer over loopback — connect, OPEN,
// formulate a containment query edge-at-a-time (exactly like the GUI),
// RUN, CLOSE — measuring sessions/sec and the p50/p95/p99 RUN round-trip
// latency as seen by the client, i.e. engine SRT plus framing and socket
// overhead. Each cell also reports the same quantiles estimated from
// merged per-client obs::Histogram shards, so the drift between the exact
// percentiles and the log-bucket metric the server exports is visible.
//
// Sweeps C in {1, 4, 8, 16}. Per-cell records go to BENCH_server.json
// (override the path with PRAGUE_BENCH_JSON), including how many RUNs the
// per-session budget truncated — set PRAGUE_BENCH_TIMEOUT_MS to bound
// every Run() over the wire (default 0 = unbounded, so truncated stays 0).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/session_manager.h"
#include "obs/metrics.h"
#include "server/prague_client.h"
#include "server/prague_server.h"
#include "util/stopwatch.h"

using namespace prague;
using namespace prague::bench;

namespace {

constexpr size_t kSessionsPerClient = 24;

// Run() budget applied to every session over the wire (0 = unbounded).
int64_t TimeoutMs() {
  static int64_t ms = [] {
    const char* env = std::getenv("PRAGUE_BENCH_TIMEOUT_MS");
    return env != nullptr ? std::strtoll(env, nullptr, 10) : 0LL;
  }();
  return ms;
}

// One whole session over the wire. Returns the RUN round-trip latency in
// seconds via *run_seconds and whether the run was truncated.
bool RunOneSession(uint16_t port, const Workbench& bench,
                   const VisualQuerySpec& spec, double* run_seconds) {
  PragueClient client;
  if (!client.Connect("127.0.0.1", port).ok()) std::abort();
  if (!client.Open(TimeoutMs()).ok()) std::abort();
  std::vector<uint32_t> handles(spec.graph.NodeCount(), 0);
  uint32_t next_handle = 1;
  for (EdgeId e : spec.sequence) {
    const Edge& edge = spec.graph.GetEdge(e);
    for (NodeId n : {edge.u, edge.v}) {
      if (handles[n] == 0) handles[n] = next_handle++;
    }
    Result<StepReply> step = client.AddEdge(
        handles[edge.u], bench.db.labels().Name(spec.graph.NodeLabel(edge.u)),
        handles[edge.v], bench.db.labels().Name(spec.graph.NodeLabel(edge.v)),
        edge.label);
    if (!step.ok()) std::abort();
  }
  Stopwatch timer;
  Result<RunReply> run = client.Run();
  if (!run.ok()) std::abort();
  *run_seconds = timer.ElapsedSeconds();
  if (!client.Close().ok()) std::abort();
  return run->truncated;
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

int main() {
  const size_t graphs = AidsGraphCount() / 4;
  Banner("server", "wire-protocol sessions over loopback, |D| = " +
                       std::to_string(graphs));
  Workbench bench = BuildAidsWorkbench(graphs);
  std::vector<VisualQuerySpec> queries = ContainmentQueries(bench);
  if (queries.empty()) {
    std::fprintf(stderr, "no queries; aborting\n");
    return 1;
  }

  SessionManager manager(bench.snapshot);
  PragueServerOptions options;
  options.port = 0;  // ephemeral
  options.worker_threads = 32;
  PragueServer server(&manager, options);
  if (Status st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "server: %s\n", st.ToString().c_str());
    return 1;
  }

  BenchJsonWriter json("BENCH_server.json");
  TablePrinter table({"clients", "sessions", "sessions/s", "p50 RUN (ms)",
                      "p95 RUN (ms)", "p99 RUN (ms)", "truncated"});
  for (size_t clients : {1u, 4u, 8u, 16u}) {
    std::vector<std::vector<double>> latencies(clients);
    // Per-client histogram shards (µs), recorded lock-free from each
    // client thread and merged after the join — the same machinery the
    // server's prague_server_run_latency_us metric uses.
    std::vector<obs::Histogram> shards(clients);
    std::atomic<size_t> truncated{0};
    Stopwatch wall;
    std::vector<std::thread> pool;
    pool.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      pool.emplace_back([&, c] {
        for (size_t i = 0; i < kSessionsPerClient; ++i) {
          const VisualQuerySpec& spec =
              queries[(c * kSessionsPerClient + i) % queries.size()];
          double run_seconds = 0;
          if (RunOneSession(server.port(), bench, spec, &run_seconds)) {
            truncated.fetch_add(1);
          }
          latencies[c].push_back(run_seconds);
          shards[c].Record(static_cast<uint64_t>(run_seconds * 1e6 + 0.5));
        }
      });
    }
    for (std::thread& t : pool) t.join();
    double seconds = wall.ElapsedSeconds();

    std::vector<double> all;
    for (const auto& per_client : latencies) {
      all.insert(all.end(), per_client.begin(), per_client.end());
    }
    std::sort(all.begin(), all.end());
    obs::HistogramSnapshot hist;
    for (const obs::Histogram& shard : shards) hist.Merge(shard.Snapshot());
    const size_t sessions = clients * kSessionsPerClient;
    const double rate = static_cast<double>(sessions) / seconds;
    const double p50 = Percentile(all, 0.50) * 1000;
    const double p95 = Percentile(all, 0.95) * 1000;
    const double p99 = Percentile(all, 0.99) * 1000;
    table.AddRow({std::to_string(clients), std::to_string(sessions),
                  Fmt(rate, 1), Fmt(p50, 3), Fmt(p95, 3), Fmt(p99, 3),
                  std::to_string(truncated.load())});
    json.Add("{\"clients\": " + std::to_string(clients) +
             ", \"sessions\": " + std::to_string(sessions) +
             ", \"sessions_per_sec\": " + Fmt(rate, 2) +
             ", \"run_p50_ms\": " + Fmt(p50, 4) +
             ", \"run_p95_ms\": " + Fmt(p95, 4) +
             ", \"run_p99_ms\": " + Fmt(p99, 4) +
             // Log-bucket estimates from the merged histogram shards, for
             // comparison against the exact sorted-sample percentiles.
             ", \"hist_p50_ms\": " + Fmt(hist.Quantile(0.50) / 1000, 4) +
             ", \"hist_p95_ms\": " + Fmt(hist.Quantile(0.95) / 1000, 4) +
             ", \"hist_p99_ms\": " + Fmt(hist.Quantile(0.99) / 1000, 4) +
             ", \"timeout_ms\": " + std::to_string(TimeoutMs()) +
             ", \"truncated\": " + std::to_string(truncated.load()) + "}");
  }
  table.Print();
  std::printf("wrote %s\n", json.path().c_str());
  server.Stop();
  return 0;
}
