// Per-run tracing: RAII spans over the phases of a Run(), collected into a
// RunTrace, kept in a bounded ring of recent runs.
//
// A RunTrace is the paper's latency story for one query: how the SRT
// decomposes into SPIG build (Algorithm 2, paid at formulation time),
// candidate derivation (Algorithm 4), exact verification, and similarity
// generation (Algorithm 5), plus the search-effort counters and the
// deadline outcome. Metrics (obs/metrics.h) aggregate the same quantities
// across runs; a trace keeps them per run so a slow-query log entry or an
// operator can see *which* phase ate the budget.
//
// Tracing is not a hot path: a trace is built once per Run() (which does
// milliseconds of work) and may allocate; the zero-allocation constraint
// applies to metric recording only.

#ifndef PRAGUE_OBS_TRACE_H_
#define PRAGUE_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/stopwatch.h"

namespace prague::obs {

/// \brief One timed phase inside a run. The name must be a string literal
/// (spans never own storage).
struct SpanRecord {
  const char* name = "";
  double seconds = 0;
  /// Shard ordinal for per-shard phase spans of a sharded run; -1 for the
  /// ordinary whole-run spans. Kept as a field (not baked into the name)
  /// because names must stay literals.
  int shard = -1;

  bool operator==(const SpanRecord&) const = default;
};

/// \brief The phase breakdown and outcome of one Run().
struct RunTrace {
  uint64_t session_tag = 0;      ///< owner-stamped id (0 = unmanaged)
  uint64_t snapshot_version = 0; ///< pinned snapshot version
  uint64_t run_ordinal = 0;      ///< 1-based Run() count within the session
  size_t query_edges = 0;        ///< |q| at Run() time
  bool similarity = false;       ///< similarity-mode results
  bool truncated = false;        ///< a deadline/cancel cut the run
  const char* deadline_phase = "none";  ///< RunPhaseName of the cut
  double srt_seconds = 0;        ///< total Run() wall time
  size_t result_count = 0;       ///< matches returned
  uint64_t vf2_calls = 0;        ///< VF2 invocations spent verifying
  uint64_t nodes_expanded = 0;   ///< search expansion steps, all phases
  uint64_t candidates_pruned = 0;  ///< candidates verification rejected
  /// Phase spans in execution order. Formulation-time work (SPIG builds,
  /// candidate refreshes) appears as cumulative "formulation-*" spans so a
  /// trace shows the full PRAGUE split: work hidden in GUI latency vs SRT.
  std::vector<SpanRecord> spans;

  /// \brief Single greppable line for the slow-query log.
  std::string ToString() const;

  /// \brief One JSON object (no trailing newline) for the HTTP `/tracez`
  /// endpoint: the same fields as ToString() plus the span array.
  std::string ToJson() const;
};

/// \brief RAII phase timer: times its scope and appends a SpanRecord to
/// the trace on Stop() or destruction.
class TraceSpan {
 public:
  /// \p trace may be null (span becomes a plain stopwatch); \p name must
  /// be a string literal.
  TraceSpan(RunTrace* trace, const char* name)
      : trace_(trace), name_(name) {}
  ~TraceSpan() {
    if (!stopped_) Stop();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// \brief Ends the span now, appends its record, and returns the elapsed
  /// seconds. Idempotent.
  double Stop() {
    if (!stopped_) {
      stopped_ = true;
      seconds_ = timer_.ElapsedSeconds();
      if (trace_ != nullptr) trace_->spans.push_back({name_, seconds_});
    }
    return seconds_;
  }

 private:
  RunTrace* trace_;
  const char* name_;
  Stopwatch timer_;
  bool stopped_ = false;
  double seconds_ = 0;
};

/// \brief Bounded ring of the most recent RunTraces. Mutex-protected —
/// Add() happens once per Run(), never inside a search loop. Shared by all
/// sessions of one SessionManager.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity = 64)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// \brief Appends \p trace, evicting the oldest once full.
  void Add(RunTrace trace);

  /// \brief The retained traces, oldest first.
  std::vector<RunTrace> Recent() const;

  size_t capacity() const { return capacity_; }
  /// \brief Traces ever added (≥ the retained count).
  uint64_t total_added() const;

 private:
  mutable std::mutex mu_;
  const size_t capacity_;
  size_t next_ = 0;       // ring slot the next Add() overwrites
  uint64_t added_ = 0;
  std::vector<RunTrace> ring_;
};

}  // namespace prague::obs

#endif  // PRAGUE_OBS_TRACE_H_
