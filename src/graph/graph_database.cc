#include "graph/graph_database.h"

#include <algorithm>

namespace prague {

Label LabelDictionary::Intern(const std::string& name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  Label id = static_cast<Label>(names_.size());
  names_.push_back(name);
  ids_.emplace(name, id);
  return id;
}

Result<Label> LabelDictionary::Lookup(const std::string& name) const {
  auto it = ids_.find(name);
  if (it == ids_.end()) {
    return Status::NotFound("label not in dictionary: " + name);
  }
  return it->second;
}

Result<std::string> LabelDictionary::NameOf(Label label) const {
  if (static_cast<size_t>(label) >= names_.size()) {
    return Status::NotFound("label id " + std::to_string(label) +
                            " outside dictionary of size " +
                            std::to_string(names_.size()));
  }
  return names_[label];
}

std::vector<std::string> LabelDictionary::SortedNames() const {
  std::vector<std::string> out = names_;
  std::sort(out.begin(), out.end());
  return out;
}

GraphId GraphDatabase::Add(Graph g) {
  graphs_.push_back(std::make_shared<const Graph>(std::move(g)));
  return static_cast<GraphId>(graphs_.size() - 1);
}

double GraphDatabase::AverageEdgeCount() const {
  if (graphs_.empty()) return 0;
  size_t total = 0;
  for (const auto& g : graphs_) total += g->EdgeCount();
  return static_cast<double>(total) / static_cast<double>(graphs_.size());
}

double GraphDatabase::AverageNodeCount() const {
  if (graphs_.empty()) return 0;
  size_t total = 0;
  for (const auto& g : graphs_) total += g->NodeCount();
  return static_cast<double>(total) / static_cast<double>(graphs_.size());
}

size_t GraphDatabase::ByteSize() const {
  size_t bytes = 0;
  for (const auto& g : graphs_) bytes += g->ByteSize();
  return bytes;
}

}  // namespace prague
