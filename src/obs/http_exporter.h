// Embedded HTTP/1.1 metrics exporter — the operator plane's front door.
//
// A deliberately minimal HTTP server on its own epoll loop + thread
// (mirroring the reactor's non-blocking socket / write-queue idiom, one
// loop is plenty for scrape traffic), so Prometheus, kubelet probes, and
// curl can reach the process without speaking the PRAGUE wire protocol:
//
//   GET /metrics  Prometheus text exposition (text/plain; version=0.0.4),
//                 rendered from a registry snapshot on the exporter
//                 thread — never on an event loop, never under load.
//   GET /healthz  liveness: 200 "ok" while the exporter thread serves.
//   GET /readyz   readiness hook: 200 "ready" / 503 "unavailable".
//   GET /statusz  JSON process status supplied by the embedder.
//   GET /tracez   JSON dump of recent RunTraces (the bounded TraceRing).
//
// The exporter holds no engine references itself; the embedder wires
// std::function hooks, so it composes with any combination of
// SessionManager / PragueServer / StorageEngine (tools/praguedb.cc wires
// all three for `serve --http-port=N`).
//
// Scope: GET only, no TLS, no chunked bodies, requests capped at a few KB.
// This is an operator sidecar endpoint, not a general web server.

#ifndef PRAGUE_OBS_HTTP_EXPORTER_H_
#define PRAGUE_OBS_HTTP_EXPORTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/status.h"

namespace prague::obs {

struct HttpExporterOptions {
  /// TCP port; 0 picks an ephemeral port (port() reports it).
  uint16_t port = 0;
  /// listen(2) backlog. Scrapers are few; keep it small.
  int backlog = 16;
  /// Read cap per request; a peer exceeding it is disconnected.
  size_t max_request_bytes = 8192;
};

/// \brief Embedder-supplied data sources. Every hook may be null; the
/// endpoint then serves a safe default (ready, "{}", empty trace list).
/// Hooks run on the exporter thread and must be thread-safe.
struct HttpExporterHooks {
  /// /readyz: true once the process can serve queries (snapshot
  /// published, storage recovered, not in global shed).
  std::function<bool()> ready;
  /// /statusz: one JSON object (version, uptime, sessions, WAL, ...).
  std::function<std::string()> statusz_json;
  /// /tracez: recent run traces, oldest first.
  std::function<std::vector<RunTrace>()> traces;
};

/// \brief The exporter. Start() spawns the serving thread; Stop() joins
/// it and closes every connection. Safe to construct without starting.
class HttpExporter {
 public:
  explicit HttpExporter(HttpExporterOptions options = {},
                        HttpExporterHooks hooks = {});
  ~HttpExporter();

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// \brief Binds, listens, and starts the exporter thread. Fails without
  /// side effects if the port cannot be bound.
  Status Start();

  /// \brief Stops the thread and closes all sockets. Idempotent.
  void Stop();

  /// \brief The bound port (after a successful Start()).
  uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// \brief Requests served since Start() (any endpoint, including 404s).
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn;

  void Loop();
  void HandleAccept(std::unordered_map<int, Conn>& conns);
  // Reads from \p conn; true to keep the connection, false to drop it.
  bool HandleReadable(Conn& conn);
  bool HandleWritable(Conn& conn);
  bool FlushOut(Conn& conn);
  void UpdateEpollOut(Conn& conn);
  // Serves every complete request sitting in conn.in; false = close.
  bool ServeBuffered(Conn& conn);
  std::string BuildResponse(const std::string& path, bool keep_alive);

  HttpExporterOptions options_;
  HttpExporterHooks hooks_;

  Counter* requests_total_;       // prague_http_requests_total
  Counter* request_errors_total_; // prague_http_request_errors_total
  Histogram* scrape_render_us_;   // prague_http_scrape_render_us

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> requests_served_{0};
  std::thread thread_;
};

}  // namespace prague::obs

#endif  // PRAGUE_OBS_HTTP_EXPORTER_H_
