// Dynamic database: versioned snapshots and copy-on-write maintenance —
// many readers, one writer, nobody waits.
//
// Flow:
//  1. Index an initial corpus and stand up a SessionManager over the
//     version-0 snapshot.
//  2. Open a session and pin it; it will stay on version 0 for its whole
//     life.
//  3. Append batches of new molecules through the manager: each append
//     builds a successor snapshot copy-on-write and publishes it
//     atomically. The pinned session keeps answering from version 0 while
//     fresh sessions see each new version immediately.
//  4. Watch the manager's stats view (sessions grouped by pinned version)
//     and the per-append from→to version stamps in the report.
//
// Usage: ./build/examples/dynamic_database [initial=1500] [batches=4]

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/session_manager.h"
#include "datasets/aids_generator.h"
#include "datasets/query_workload.h"
#include "index/action_aware_index.h"
#include "index/index_maintenance.h"
#include "util/stopwatch.h"

using namespace prague;

namespace {

// Runs `spec` through a session opened from `manager`; returns
// (matches, candidates, pinned version).
struct QueryOutcome {
  size_t matches = 0;
  size_t candidates = 0;
  uint64_t version = 0;
};

QueryOutcome Formulate(const std::shared_ptr<ManagedSession>& session,
                       const VisualQuerySpec& spec) {
  return session->With([&](PragueSession& s) {
    std::vector<NodeId> ids(spec.graph.NodeCount(), kInvalidNode);
    for (EdgeId e : spec.sequence) {
      const Edge& edge = spec.graph.GetEdge(e);
      for (NodeId n : {edge.u, edge.v}) {
        if (ids[n] == kInvalidNode) {
          ids[n] = s.AddNode(spec.graph.NodeLabel(n));
        }
      }
      if (!s.AddEdge(ids[edge.u], ids[edge.v], edge.label).ok()) {
        std::abort();
      }
    }
    QueryOutcome out;
    out.candidates = s.exact_candidates().size();
    out.version = s.version();
    Result<QueryResults> results = s.Run(nullptr);
    if (!results.ok()) std::abort();
    out.matches = results.value().exact.size();
    return out;
  });
}

QueryOutcome RunQuery(SessionManager& manager, const VisualQuerySpec& spec) {
  return Formulate(manager.Open(), spec);
}

}  // namespace

int main(int argc, char** argv) {
  size_t initial = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1500;
  int batches = argc > 2 ? std::atoi(argv[2]) : 4;
  constexpr double kAlpha = 0.1;

  std::printf("== dynamic_database: versioned snapshots + COW appends ==\n\n");
  AidsGeneratorConfig gen;
  gen.graph_count = initial + static_cast<size_t>(batches) * 200;
  gen.seed = 77;
  GraphDatabase all = GenerateAidsLikeDatabase(gen);

  // Initial corpus = first `initial` molecules.
  GraphDatabase db;
  for (const std::string& name : all.labels().names()) {
    db.mutable_labels()->Intern(name);
  }
  for (GraphId gid = 0; gid < initial; ++gid) db.Add(all.graph(gid));

  MiningConfig mining;
  mining.min_support_ratio = kAlpha;
  mining.max_fragment_edges = 8;
  A2fConfig a2f;
  a2f.beta = 4;
  Stopwatch build_timer;
  Result<ActionAwareIndexes> indexes = BuildActionAwareIndexes(db, mining, a2f);
  if (!indexes.ok()) {
    std::fprintf(stderr, "%s\n", indexes.status().ToString().c_str());
    return 1;
  }
  std::printf("initial index over %zu molecules in %.1fs (%zu frequent, "
              "%zu DIFs)\n\n",
              db.size(), build_timer.ElapsedSeconds(),
              indexes->a2f.VertexCount(), indexes->a2i.EntryCount());

  WorkloadGenerator workload(&db, 9);
  Result<VisualQuerySpec> spec = workload.ContainmentQuery(6, "watch");
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }

  SessionManager manager(
      DatabaseSnapshot::Make(std::move(db), std::move(indexes.value())));

  // This session pins version 0 and holds it across every append below.
  std::shared_ptr<ManagedSession> pinned = manager.Open();
  QueryOutcome v0 = Formulate(pinned, *spec);
  std::printf("watched query: %zu matches (%zu candidates) pinned at "
              "version %llu\n\n",
              v0.matches, v0.candidates,
              static_cast<unsigned long long>(v0.version));

  GraphId next = static_cast<GraphId>(initial);
  for (int batch = 1; batch <= batches; ++batch) {
    std::vector<Graph> incoming;
    for (int i = 0; i < 200 && next < all.size(); ++i, ++next) {
      incoming.push_back(all.graph(next));
    }
    Stopwatch append_timer;
    Result<MaintenanceReport> report =
        manager.Append(std::move(incoming), kAlpha);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    QueryOutcome now = RunQuery(manager, *spec);
    std::printf(
        "batch %d: +%zu graphs in %.2fs, version %llu -> %llu -> fresh "
        "session sees %zu matches / %zu candidates%s\n",
        batch, report->graphs_added, append_timer.ElapsedSeconds(),
        static_cast<unsigned long long>(report->from_version),
        static_cast<unsigned long long>(report->to_version), now.matches,
        now.candidates,
        report->remine_recommended ? "  [drift: re-mine recommended]" : "");
  }

  // The pinned session still answers from version 0 — results are a pure
  // function of the pinned snapshot, not of wall-clock time.
  size_t pinned_db_size = pinned->With(
      [](PragueSession& s) { return s.snapshot()->db().size(); });
  Result<QueryResults> replay =
      pinned->With([](PragueSession& s) { return s.Run(nullptr); });
  if (!replay.ok()) std::abort();
  std::printf(
      "\npinned session: still version %llu, |D| = %zu, query still %zu "
      "matches\n",
      static_cast<unsigned long long>(pinned->version()), pinned_db_size,
      replay->exact.size());

  SessionManagerStats stats = manager.Stats();
  std::printf("manager: current version %llu, %zu open / %llu opened "
              "sessions, %llu snapshots published\n",
              static_cast<unsigned long long>(stats.current_version),
              stats.open_sessions,
              static_cast<unsigned long long>(stats.sessions_opened),
              static_cast<unsigned long long>(stats.snapshots_published));
  for (const auto& [version, count] : stats.sessions_by_version) {
    std::printf("  version %llu: %zu live session(s)\n",
                static_cast<unsigned long long>(version), count);
  }
  return 0;
}
