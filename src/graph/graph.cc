#include "graph/graph.h"

#include <sstream>
#include <vector>

#include "util/bytes.h"

namespace prague {

EdgeId Graph::FindEdge(NodeId u, NodeId v) const {
  if (u >= NodeCount() || v >= NodeCount()) return kInvalidEdge;
  // Scan the smaller adjacency list.
  NodeId base = adj_[u].size() <= adj_[v].size() ? u : v;
  NodeId other = base == u ? v : u;
  for (const Adjacency& a : adj_[base]) {
    if (a.neighbor == other) return a.edge;
  }
  return kInvalidEdge;
}

bool Graph::IsConnected() const {
  if (Empty()) return false;
  std::vector<bool> seen(NodeCount(), false);
  std::vector<NodeId> stack = {0};
  seen[0] = true;
  size_t count = 1;
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    for (const Adjacency& a : adj_[n]) {
      if (!seen[a.neighbor]) {
        seen[a.neighbor] = true;
        ++count;
        stack.push_back(a.neighbor);
      }
    }
  }
  return count == NodeCount();
}

size_t Graph::ByteSize() const {
  size_t bytes = VectorBytes(node_labels_) + VectorBytes(edges_) +
                 VectorBytes(adj_);
  for (const auto& list : adj_) bytes += VectorBytes(list);
  return bytes;
}

std::string Graph::ToString() const {
  std::ostringstream out;
  out << "Graph(" << NodeCount() << " nodes, " << EdgeCount() << " edges)\n";
  for (NodeId n = 0; n < NodeCount(); ++n) {
    out << "  v" << n << " label=" << node_labels_[n] << "\n";
  }
  for (EdgeId e = 0; e < EdgeCount(); ++e) {
    out << "  e" << e << " (" << edges_[e].u << "," << edges_[e].v
        << ") label=" << edges_[e].label << "\n";
  }
  return out.str();
}

GraphBuilder::GraphBuilder(const Graph& g) { graph_ = g; }

NodeId GraphBuilder::AddNode(Label label) {
  graph_.node_labels_.push_back(label);
  graph_.adj_.emplace_back();
  return static_cast<NodeId>(graph_.node_labels_.size() - 1);
}

Result<EdgeId> GraphBuilder::AddEdge(NodeId u, NodeId v, Label label) {
  if (u >= graph_.NodeCount() || v >= graph_.NodeCount()) {
    return Status::InvalidArgument("edge endpoint does not exist");
  }
  if (u == v) {
    return Status::InvalidArgument("self-loops are not supported");
  }
  if (graph_.HasEdge(u, v)) {
    return Status::InvalidArgument("duplicate edge");
  }
  EdgeId id = static_cast<EdgeId>(graph_.edges_.size());
  graph_.edges_.push_back(Edge{u, v, label});
  graph_.adj_[u].push_back(Adjacency{v, id});
  graph_.adj_[v].push_back(Adjacency{u, id});
  return id;
}

}  // namespace prague
