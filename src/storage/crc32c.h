// CRC32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum guarding every
// WAL record and segment block in the on-disk format (docs/STORAGE.md).
//
// CRC32C rather than plain CRC32 for the same reason LevelDB/RocksDB chose
// it: better error-detection properties for short records, and hardware
// support (SSE4.2 / ARMv8) when someone later wants it. This is the
// portable table-driven (slicing-by-8) software implementation — storage
// checksums are computed once per fsync'd record, nowhere near a query
// hot path.

#ifndef PRAGUE_STORAGE_CRC32C_H_
#define PRAGUE_STORAGE_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace prague::storage {

/// \brief Extends \p crc (a previous Crc32c result, or 0) with \p n bytes.
uint32_t ExtendCrc32c(uint32_t crc, const void* data, size_t n);

/// \brief CRC32C of one buffer.
inline uint32_t Crc32c(const void* data, size_t n) {
  return ExtendCrc32c(0, data, n);
}

}  // namespace prague::storage

#endif  // PRAGUE_STORAGE_CRC32C_H_
