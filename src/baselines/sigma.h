// SIGMA-like engine (Mongiovì et al., "SIGMA: a set-cover-based inexact
// graph matching algorithm" [8]).
//
// Principle reproduced: set-cover filtering. For a data graph g, every
// query-feature occurrence whose feature g lacks must be destroyed by one
// of the σ deleted edges — so the deleted-edge set must *cover* all
// missing occurrences. If no σ-edge subset covers them, g is pruned. We
// first try the cheap greedy cover (an upper bound on the optimum: success
// accepts g as a candidate quickly) and fall back to exact enumeration of
// σ-subsets of the edges that occur in missing occurrences before pruning,
// so the filter is exact-cover sound.

#ifndef PRAGUE_BASELINES_SIGMA_H_
#define PRAGUE_BASELINES_SIGMA_H_

#include "baselines/feature_index.h"
#include "baselines/traditional.h"
#include "graph/graph_database.h"

namespace prague {

/// \brief SIGMA-like set-cover filter (shares GR's feature index).
class SigmaLikeEngine : public TraditionalSimilarityEngine {
 public:
  /// \p index and \p db must outlive the engine.
  SigmaLikeEngine(const FeatureIndex* index, const GraphDatabase* db)
      : index_(index), db_(db) {}

  std::string name() const override { return "SG"; }
  size_t IndexBytes() const override { return index_->StorageBytes(); }
  IdSet Filter(const Graph& q, int sigma,
               const Deadline& deadline = Deadline(),
               bool* truncated = nullptr) const override;

 private:
  const FeatureIndex* index_;
  const GraphDatabase* db_;
};

}  // namespace prague

#endif  // PRAGUE_BASELINES_SIGMA_H_
