// Unit tests for the graph substrate: Graph/GraphBuilder, GraphDatabase,
// text I/O, connectivity, and edge-subset operations.

#include <gtest/gtest.h>

#include <sstream>

#include "graph/graph.h"
#include "graph/graph_database.h"
#include "graph/graph_io.h"
#include "graph/subgraph_ops.h"
#include "test_fixtures.h"

namespace prague {
namespace {

using testing::MakeGraph;
using testing::kC;
using testing::kO;
using testing::kS;

TEST(GraphBuilderTest, BuildsNodesAndEdges) {
  GraphBuilder b;
  NodeId a = b.AddNode(3);
  NodeId c = b.AddNode(5);
  Result<EdgeId> e = b.AddEdge(a, c, 7);
  ASSERT_TRUE(e.ok());
  Graph g = std::move(b).Build();
  EXPECT_EQ(g.NodeCount(), 2u);
  EXPECT_EQ(g.EdgeCount(), 1u);
  EXPECT_EQ(g.NodeLabel(a), 3u);
  EXPECT_EQ(g.GetEdge(*e).label, 7u);
}

TEST(GraphBuilderTest, RejectsSelfLoop) {
  GraphBuilder b;
  NodeId a = b.AddNode(0);
  EXPECT_FALSE(b.AddEdge(a, a).ok());
}

TEST(GraphBuilderTest, RejectsDuplicateEdge) {
  GraphBuilder b;
  NodeId a = b.AddNode(0);
  NodeId c = b.AddNode(1);
  ASSERT_TRUE(b.AddEdge(a, c).ok());
  EXPECT_FALSE(b.AddEdge(c, a).ok());  // either orientation
}

TEST(GraphBuilderTest, RejectsMissingEndpoint) {
  GraphBuilder b;
  NodeId a = b.AddNode(0);
  EXPECT_FALSE(b.AddEdge(a, 42).ok());
}

TEST(GraphTest, FindEdgeBothDirections) {
  Graph g = MakeGraph({kC, kS, kC}, {{0, 1}, {1, 2}});
  EXPECT_NE(g.FindEdge(0, 1), kInvalidEdge);
  EXPECT_NE(g.FindEdge(1, 0), kInvalidEdge);
  EXPECT_EQ(g.FindEdge(0, 2), kInvalidEdge);
}

TEST(GraphTest, NeighborsAndDegree) {
  Graph g = MakeGraph({kC, kS, kC}, {{0, 1}, {1, 2}});
  EXPECT_EQ(g.Degree(1), 2u);
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Neighbors(0)[0].neighbor, 1u);
}

TEST(GraphTest, Connectivity) {
  EXPECT_TRUE(MakeGraph({kC, kC}, {{0, 1}}).IsConnected());
  EXPECT_FALSE(MakeGraph({kC, kC, kC}, {{0, 1}}).IsConnected());
  EXPECT_FALSE(Graph().IsConnected());
}

TEST(GraphDatabaseTest, AddAndStats) {
  GraphDatabase db = testing::TinyDatabase();
  EXPECT_EQ(db.size(), 6u);
  EXPECT_GT(db.AverageEdgeCount(), 2.0);
  EXPECT_EQ(db.AllIds().size(), 6u);
  EXPECT_EQ(db.labels().size(), 4u);
}

TEST(LabelDictionaryTest, InternIsIdempotent) {
  LabelDictionary d;
  Label a = d.Intern("C");
  Label b = d.Intern("C");
  EXPECT_EQ(a, b);
  EXPECT_EQ(d.Name(a), "C");
  EXPECT_TRUE(d.Lookup("C").ok());
  EXPECT_FALSE(d.Lookup("Xx").ok());
}

TEST(LabelDictionaryTest, SortedNamesLexicographic) {
  LabelDictionary d;
  d.Intern("S");
  d.Intern("C");
  d.Intern("O");
  EXPECT_EQ(d.SortedNames(), (std::vector<std::string>{"C", "O", "S"}));
}

TEST(GraphIoTest, RoundTrip) {
  GraphDatabase db = testing::TinyDatabase();
  std::ostringstream out;
  ASSERT_TRUE(WriteDatabase(db, &out).ok());
  std::istringstream in(out.str());
  Result<GraphDatabase> back = ReadDatabase(&in);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), db.size());
  for (GraphId i = 0; i < db.size(); ++i) {
    EXPECT_EQ(back->graph(i).NodeCount(), db.graph(i).NodeCount());
    EXPECT_EQ(back->graph(i).EdgeCount(), db.graph(i).EdgeCount());
  }
}

TEST(GraphIoTest, RejectsCorruptInput) {
  std::istringstream in("t # 0\nv 0 C\nv 1 C\ne 0 5\n");
  EXPECT_FALSE(ReadDatabase(&in).ok());
}

TEST(GraphIoTest, ParseGraphInternsLabels) {
  LabelDictionary labels;
  Result<Graph> g = ParseGraph("v 0 C\nv 1 S\ne 0 1\n", &labels);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NodeCount(), 2u);
  EXPECT_EQ(labels.size(), 2u);
}

TEST(SubgraphOpsTest, ExtractKeepsLabelsAndMapping) {
  Graph g = MakeGraph({kC, kS, kO, kC}, {{0, 1}, {1, 2}, {2, 3}});
  ExtractedSubgraph sub = ExtractEdgeSubgraph(g, EdgeBit(1) | EdgeBit(2));
  EXPECT_EQ(sub.graph.NodeCount(), 3u);
  EXPECT_EQ(sub.graph.EdgeCount(), 2u);
  // node_map maps back to parent nodes {1, 2, 3}.
  std::vector<NodeId> parents = sub.node_map;
  std::sort(parents.begin(), parents.end());
  EXPECT_EQ(parents, (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(sub.edge_map, (std::vector<EdgeId>{1, 2}));
}

TEST(SubgraphOpsTest, ConnectivityOfSubsets) {
  Graph g = MakeGraph({kC, kS, kO, kC}, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_TRUE(IsEdgeSubsetConnected(g, EdgeBit(0) | EdgeBit(1)));
  EXPECT_FALSE(IsEdgeSubsetConnected(g, EdgeBit(0) | EdgeBit(2)));
  EXPECT_TRUE(IsEdgeSubsetConnected(g, EdgeBit(1)));
  EXPECT_FALSE(IsEdgeSubsetConnected(g, 0));
}

TEST(SubgraphOpsTest, EnumerationCountsOnPath) {
  // Path with 3 edges: connected subsets = 3 singles, 2 pairs, 1 triple.
  Graph g = MakeGraph({kC, kS, kO, kC}, {{0, 1}, {1, 2}, {2, 3}});
  auto by_size = ConnectedEdgeSubsetsBySize(g);
  EXPECT_EQ(by_size[1].size(), 3u);
  EXPECT_EQ(by_size[2].size(), 2u);
  EXPECT_EQ(by_size[3].size(), 1u);
}

TEST(SubgraphOpsTest, EnumerationCountsOnTriangle) {
  Graph g = MakeGraph({kC, kC, kC}, {{0, 1}, {1, 2}, {0, 2}});
  auto by_size = ConnectedEdgeSubsetsBySize(g);
  EXPECT_EQ(by_size[1].size(), 3u);
  EXPECT_EQ(by_size[2].size(), 3u);
  EXPECT_EQ(by_size[3].size(), 1u);
}

TEST(SubgraphOpsTest, SupersetsOfRequiredEdge) {
  Graph g = MakeGraph({kC, kS, kO, kC}, {{0, 1}, {1, 2}, {2, 3}});
  auto by_size = ConnectedEdgeSupersetsOf(g, 0);
  EXPECT_EQ(by_size[1].size(), 1u);  // just e0
  EXPECT_EQ(by_size[2].size(), 1u);  // {e0, e1}
  EXPECT_EQ(by_size[3].size(), 1u);  // all
  for (size_t k = 1; k < by_size.size(); ++k) {
    for (EdgeMask m : by_size[k]) EXPECT_TRUE(m & EdgeBit(0));
  }
}

TEST(SubgraphOpsTest, SupersetsMatchSubsetsFilteredByEdge) {
  GraphDatabase db = testing::TinyDatabase();
  const Graph& g = db.graph(0);  // triangle + pendant
  auto all = ConnectedEdgeSubsetsBySize(g);
  for (EdgeId e = 0; e < g.EdgeCount(); ++e) {
    auto sup = ConnectedEdgeSupersetsOf(g, e);
    for (size_t k = 1; k <= g.EdgeCount(); ++k) {
      size_t expected = 0;
      for (EdgeMask m : all[k]) {
        if (m & EdgeBit(e)) ++expected;
      }
      EXPECT_EQ(sup[k].size(), expected) << "edge " << e << " size " << k;
    }
  }
}

}  // namespace
}  // namespace prague
