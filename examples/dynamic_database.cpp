// Dynamic database: keeping PRAGUE's indexes fresh while molecules keep
// arriving — the deployment concern the paper leaves open.
//
// Flow:
//  1. Index an initial corpus.
//  2. Run a query; remember its answers.
//  3. Append batches of new molecules with incremental maintenance
//     (index/index_maintenance.h) — no re-mining — and watch the same
//     query pick up new matches immediately.
//  4. When the maintenance report flags classification drift, re-mine and
//     compare: the incrementally-maintained index never returned a wrong
//     answer, it just gradually lost pruning power.
//
// Usage: ./build/examples/dynamic_database [initial=1500] [batches=4]

#include <cstdio>
#include <cstdlib>

#include "core/prague_session.h"
#include "datasets/aids_generator.h"
#include "datasets/query_workload.h"
#include "index/action_aware_index.h"
#include "index/index_maintenance.h"
#include "util/stopwatch.h"

using namespace prague;

namespace {

// Runs `spec` through a fresh session; returns (matches, candidates).
std::pair<size_t, size_t> RunQuery(const GraphDatabase& db,
                                   const ActionAwareIndexes& indexes,
                                   const VisualQuerySpec& spec) {
  PragueSession session(&db, &indexes);
  std::vector<NodeId> ids(spec.graph.NodeCount(), kInvalidNode);
  for (EdgeId e : spec.sequence) {
    const Edge& edge = spec.graph.GetEdge(e);
    for (NodeId n : {edge.u, edge.v}) {
      if (ids[n] == kInvalidNode) {
        ids[n] = session.AddNode(spec.graph.NodeLabel(n));
      }
    }
    if (!session.AddEdge(ids[edge.u], ids[edge.v], edge.label).ok()) {
      std::abort();
    }
  }
  size_t candidates = session.exact_candidates().size();
  Result<QueryResults> results = session.Run(nullptr);
  if (!results.ok()) std::abort();
  return {results->exact.size(), candidates};
}

}  // namespace

int main(int argc, char** argv) {
  size_t initial = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1500;
  int batches = argc > 2 ? std::atoi(argv[2]) : 4;
  constexpr double kAlpha = 0.1;

  std::printf("== dynamic_database: incremental index maintenance ==\n\n");
  AidsGeneratorConfig gen;
  gen.graph_count = initial + static_cast<size_t>(batches) * 200;
  gen.seed = 77;
  GraphDatabase all = GenerateAidsLikeDatabase(gen);

  // Initial corpus = first `initial` molecules.
  GraphDatabase db;
  for (const std::string& name : all.labels().names()) {
    db.mutable_labels()->Intern(name);
  }
  for (GraphId gid = 0; gid < initial; ++gid) db.Add(all.graph(gid));

  MiningConfig mining;
  mining.min_support_ratio = kAlpha;
  mining.max_fragment_edges = 8;
  A2fConfig a2f;
  a2f.beta = 4;
  Stopwatch build_timer;
  Result<ActionAwareIndexes> indexes = BuildActionAwareIndexes(db, mining, a2f);
  if (!indexes.ok()) {
    std::fprintf(stderr, "%s\n", indexes.status().ToString().c_str());
    return 1;
  }
  std::printf("initial index over %zu molecules in %.1fs (%zu frequent, "
              "%zu DIFs)\n\n",
              db.size(), build_timer.ElapsedSeconds(),
              indexes->a2f.VertexCount(), indexes->a2i.EntryCount());

  WorkloadGenerator workload(&db, 9);
  Result<VisualQuerySpec> spec = workload.ContainmentQuery(6, "watch");
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  auto [matches, candidates] = RunQuery(db, *indexes, *spec);
  std::printf("watched query: %zu matches (%zu candidates) on the initial "
              "corpus\n\n",
              matches, candidates);

  GraphId next = static_cast<GraphId>(initial);
  for (int batch = 1; batch <= batches; ++batch) {
    std::vector<Graph> incoming;
    for (int i = 0; i < 200 && next < all.size(); ++i, ++next) {
      incoming.push_back(all.graph(next));
    }
    Stopwatch append_timer;
    Result<MaintenanceReport> report =
        AppendGraphs(&db, std::move(incoming), &indexes.value(), kAlpha);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    auto [m, c] = RunQuery(db, *indexes, *spec);
    std::printf(
        "batch %d: +%zu graphs in %.2fs (probes %zu, pruned %zu) -> query "
        "now %zu matches / %zu candidates%s\n",
        batch, report->graphs_added, append_timer.ElapsedSeconds(),
        report->probes, report->pruned_probes, m, c,
        report->remine_recommended ? "  [drift: re-mine recommended]" : "");
  }

  // Full re-mine at the final corpus and compare footprints.
  Stopwatch remine_timer;
  Result<ActionAwareIndexes> fresh = BuildActionAwareIndexes(db, mining, a2f);
  if (!fresh.ok()) {
    std::fprintf(stderr, "%s\n", fresh.status().ToString().c_str());
    return 1;
  }
  auto [m2, c2] = RunQuery(db, *fresh, *spec);
  std::printf(
      "\nfull re-mine in %.1fs: %zu frequent / %zu DIFs (incremental index "
      "had %zu / %zu); query matches unchanged at %zu, candidates %zu vs "
      "%zu incremental\n",
      remine_timer.ElapsedSeconds(), fresh->a2f.VertexCount(),
      fresh->a2i.EntryCount(), indexes->a2f.VertexCount(),
      indexes->a2i.EntryCount(), m2, c2,
      RunQuery(db, *indexes, *spec).second);
  return 0;
}
