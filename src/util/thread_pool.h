// Minimal fixed-size thread pool used to parallelize verification
// (subgraph-isomorphism tests dominate SRT; they are embarrassingly
// parallel across candidate graphs).

#ifndef PRAGUE_UTIL_THREAD_POOL_H_
#define PRAGUE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace prague {

/// \brief Fixed-size worker pool with a blocking task queue.
class ThreadPool {
 public:
  /// \brief Spawns \p threads workers (at least 1).
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Enqueues a task.
  void Submit(std::function<void()> task);

  /// \brief Blocks until every submitted task has finished.
  void Wait();

  /// \brief Number of workers.
  size_t size() const { return workers_.size(); }

  /// \brief Partitions [0, count) into roughly equal chunks and runs
  /// \p fn(begin, end) on the pool, blocking until done. Runs inline when
  /// the pool has one worker or the range is tiny.
  void ParallelFor(size_t count, size_t min_chunk,
                   const std::function<void(size_t, size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace prague

#endif  // PRAGUE_UTIL_THREAD_POOL_H_
