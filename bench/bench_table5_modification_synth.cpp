// Table V reproduction: query modification cost (ms) on the synthetic
// datasets as |D| scales. Protocol: formulate Q5-Q8 fully, then delete the
// earliest deletable edge.
//
// Paper shape: modification cost stays in single-digit-to-tens of ms and
// grows gracefully (0 → ~40 ms from 10K to 80K), always hidden under GUI
// latency.

#include <cstdio>

#include "bench_common.h"
#include "core/prague_session.h"
#include "util/stopwatch.h"

using namespace prague;
using namespace prague::bench;

int main() {
  Banner("Table V: modification cost (ms) vs synthetic dataset size",
         "alpha=0.05, full query formulated, earliest deletable edge "
         "deleted");
  std::vector<size_t> sizes = SyntheticSizes();

  // Queries sampled from the smallest dataset; generators are
  // prefix-stable so the same graphs exist in every larger dataset.
  std::vector<VisualQuerySpec> queries;
  std::vector<std::string> headers = {"query"};
  for (size_t n : sizes) headers.push_back(std::to_string(n / 1000) + "K");
  TablePrinter table(headers);
  std::vector<std::vector<std::string>> rows;

  for (size_t si = 0; si < sizes.size(); ++si) {
    Workbench bench = BuildSyntheticWorkbench(sizes[si]);
    if (queries.empty()) {
      queries = SyntheticQueries(bench);
      rows.assign(queries.size(), {});
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        rows[qi].push_back(queries[qi].name);
      }
    }
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const VisualQuerySpec& spec = queries[qi];
      PragueSession session(bench.snapshot);
      const Graph& q = spec.graph;
      std::vector<NodeId> node_map(q.NodeCount(), kInvalidNode);
      bool ok = true;
      for (EdgeId e : spec.sequence) {
        const Edge& edge = q.GetEdge(e);
        for (NodeId n : {edge.u, edge.v}) {
          if (node_map[n] == kInvalidNode) {
            node_map[n] = session.AddNode(q.NodeLabel(n));
          }
        }
        if (!session.AddEdge(node_map[edge.u], node_map[edge.v], edge.label)
                 .ok()) {
          ok = false;
          break;
        }
      }
      double seconds = -1;
      if (ok) {
        for (FormulationId ell = 1;
             ell <= static_cast<FormulationId>(q.EdgeCount()); ++ell) {
          if (!session.query().CanDelete(ell)) continue;
          Stopwatch timer;
          if (session.DeleteEdge(ell).ok()) {
            seconds = timer.ElapsedSeconds();
          }
          break;
        }
      }
      rows[qi].push_back(seconds < 0 ? "-" : FmtMs(seconds));
    }
    std::fprintf(stderr, "|D|=%zu done (mining %.1fs)\n", sizes[si],
                 bench.mining_seconds);
  }
  for (auto& row : rows) table.AddRow(std::move(row));
  table.Print();
  std::printf(
      "\npaper shape check: costs stay in the milliseconds and grow "
      "gracefully with |D|.\n");
  return 0;
}
