// The canonical-code handle used across indexes and SPIGs.
//
// The paper attaches "the CAM code of g" to every index vertex and SPIG
// vertex as the isomorphism-invariant key. Our production canonical form
// is the serialized minimum DFS code (same invariant, shares machinery
// with the gSpan miner); graph/cam_code.h holds a true CAM implementation
// that tests check against.

#ifndef PRAGUE_GRAPH_CANONICAL_H_
#define PRAGUE_GRAPH_CANONICAL_H_

#include <string>

#include "graph/dfs_code.h"
#include "graph/graph.h"

namespace prague {

/// Canonical-code string: equal ⇔ isomorphic (for connected labeled
/// graphs with ≥ 1 edge).
using CanonicalCode = std::string;

/// \brief Canonical code of a connected graph with ≥ 1 edge.
inline CanonicalCode GetCanonicalCode(const Graph& g) {
  return DfsCodeToString(MinimumDfsCode(g));
}

}  // namespace prague

#endif  // PRAGUE_GRAPH_CANONICAL_H_
