// Minimal fixed-size thread pool used to parallelize verification
// (subgraph-isomorphism tests dominate SRT; they are embarrassingly
// parallel across candidate graphs) and shard-parallel query execution.
//
// Waiting discipline: ThreadPool::Wait() blocks until the pool as a whole
// drains, which is only meaningful when one caller owns the pool. Any code
// that shares a pool — sharded runs from many sessions, ParallelFor —
// must scope its wait to its own tasks with a TaskGroup.

#ifndef PRAGUE_UTIL_THREAD_POOL_H_
#define PRAGUE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "util/status.h"

namespace prague {

/// \brief Fixed-size worker pool with a blocking task queue.
class ThreadPool {
 public:
  /// \brief Spawns \p threads workers (at least 1).
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Enqueues a task.
  void Submit(std::function<void()> task);

  /// \brief Blocks until every submitted task has finished — every task in
  /// the whole pool, including other callers'. Use a TaskGroup to wait on
  /// just your own tasks when the pool is shared.
  void Wait();

  /// \brief Number of workers.
  size_t size() const { return workers_.size(); }

  /// \brief Partitions [0, count) into roughly equal chunks and runs
  /// \p fn(begin, end) on the pool, blocking until done. Runs inline when
  /// the pool has one worker or the range is tiny. Built on a TaskGroup,
  /// so it waits only on its own chunks and is safe on a shared pool.
  void ParallelFor(size_t count, size_t min_chunk,
                   const std::function<void(size_t, size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

/// \brief A wait-scope over a shared ThreadPool: tracks only the tasks
/// submitted through it, so concurrent groups on one pool never observe
/// each other. An exception escaping a task is captured (first one wins)
/// and surfaced as Status::Internal from WaitAll() instead of
/// std::terminate-ing a worker thread.
///
/// With a null pool every task runs inline at Submit(), which keeps
/// single-threaded callers allocation- and synchronization-free in
/// structure: the same scatter code serves both paths.
class TaskGroup {
 public:
  /// \brief Binds the group to \p pool (null = run tasks inline).
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  /// \brief Blocks until the group drains (errors are dropped — call
  /// WaitAll() first if you care).
  ~TaskGroup() { WaitAll(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// \brief Enqueues \p task on the pool (or runs it inline when the pool
  /// is null). Must not be called concurrently with WaitAll().
  void Submit(std::function<void()> task);

  /// \brief Blocks until every task submitted so far has finished. Returns
  /// OK, or the first captured exception as Status::Internal.
  Status WaitAll();

 private:
  void RunTask(const std::function<void()>& task);

  ThreadPool* pool_;
  std::mutex mu_;
  std::condition_variable done_;
  size_t pending_ = 0;       // guarded by mu_
  Status first_error_;       // guarded by mu_
};

}  // namespace prague

#endif  // PRAGUE_UTIL_THREAD_POOL_H_
