// Wire-protocol session throughput against the event-loop reactor server.
//
// Phase 1 — session sweep: C concurrent clients each drive whole sessions
// over loopback — connect, OPEN, formulate a containment query
// edge-at-a-time, then `depth` pipelined RUNs (depth 1 = the lock-step
// protocol of the old blocking server), CLOSE — measuring sessions/sec,
// runs/sec, and the p50/p95/p99 RUN latency two ways per cell:
//   * client round trip: StartRun send to WaitRun return, i.e. engine SRT
//     plus framing, socket, queueing and pipelining overhead;
//   * server histogram: the delta of the prague_server_run_latency_us
//     histogram across the cell, i.e. the RUN body as timed on the
//     executor pool. Under the reactor this stays flat as C grows — the
//     acceptance property — while the client round trip degrades only
//     with genuine CPU contention (all C clients share these cores).
//
// Phase 2 — connection sweep: up to 10k connections each OPEN a session
// and stay connected while one probe client runs lock-step sessions
// through the crowd; reports connect/open errors (must be 0) and the
// probe's RUN percentiles. The crowd is sharded across forked child
// processes because the per-process fd limit must cover both socket ends
// when client and server share a process.
//
// Phases 3 (shard sweep), 4 (hostile-tenant sweep), and 5 (durability
// sweep: fsync on/off × group-commit concurrency against a --data-dir
// server) carry their own block comments below.
//
// Per-cell records go to BENCH_server.json (override the path with
// PRAGUE_BENCH_JSON). PRAGUE_BENCH_TIMEOUT_MS bounds every Run() over the
// wire (default 0 = unbounded, so truncated stays 0).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/session_manager.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/watchdog.h"
#include "server/prague_client.h"
#include "server/prague_server.h"
#include "storage/fs_util.h"
#include "storage/storage_engine.h"
#include "util/stopwatch.h"

using namespace prague;
using namespace prague::bench;

namespace {

constexpr size_t kSessionsPerClient = 24;

// Run() budget applied to every session over the wire (0 = unbounded).
int64_t TimeoutMs() {
  static int64_t ms = [] {
    const char* env = std::getenv("PRAGUE_BENCH_TIMEOUT_MS");
    return env != nullptr ? std::strtoll(env, nullptr, 10) : 0LL;
  }();
  return ms;
}

// Formulates `spec` edge-at-a-time on an open session; aborts on error.
void FeedQuery(PragueClient& client, const Workbench& bench,
               const VisualQuerySpec& spec) {
  std::vector<uint32_t> handles(spec.graph.NodeCount(), 0);
  uint32_t next_handle = 1;
  for (EdgeId e : spec.sequence) {
    const Edge& edge = spec.graph.GetEdge(e);
    for (NodeId n : {edge.u, edge.v}) {
      if (handles[n] == 0) handles[n] = next_handle++;
    }
    Result<StepReply> step = client.AddEdge(
        handles[edge.u], bench.db.labels().Name(spec.graph.NodeLabel(edge.u)),
        handles[edge.v], bench.db.labels().Name(spec.graph.NodeLabel(edge.v)),
        edge.label);
    if (!step.ok()) std::abort();
  }
}

// One whole session over the wire: formulate, then `depth` pipelined RUNs.
// Appends one client round-trip latency (seconds) per run to *run_seconds
// and returns how many of them came back truncated.
size_t RunOneSession(uint16_t port, const Workbench& bench,
                     const VisualQuerySpec& spec, size_t depth,
                     std::vector<double>* run_seconds) {
  PragueClient client;
  if (!client.Connect("127.0.0.1", port).ok()) std::abort();
  if (!client.Open(TimeoutMs()).ok()) std::abort();
  FeedQuery(client, bench, spec);
  size_t truncated = 0;
  Stopwatch timer;
  if (depth <= 1) {
    // Lock-step, byte-identical to the pre-reactor protocol.
    Result<RunReply> run = client.Run();
    if (!run.ok()) std::abort();
    run_seconds->push_back(timer.ElapsedSeconds());
    if (run->truncated) ++truncated;
  } else {
    std::vector<uint64_t> ids(depth, 0);
    std::vector<double> issued(depth, 0);
    for (size_t i = 0; i < depth; ++i) {
      Result<uint64_t> id = client.StartRun();
      if (!id.ok()) std::abort();
      ids[i] = *id;
      issued[i] = timer.ElapsedSeconds();
    }
    for (size_t i = 0; i < depth; ++i) {
      Result<RunReply> run = client.WaitRun(ids[i]);
      if (!run.ok()) std::abort();
      run_seconds->push_back(timer.ElapsedSeconds() - issued[i]);
      if (run->truncated) ++truncated;
    }
  }
  if (!client.Close().ok()) std::abort();
  return truncated;
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

// after - before, bucket by bucket: the histogram samples recorded during
// one bench cell, free of everything the process did before it.
obs::HistogramSnapshot DiffSnapshot(const obs::HistogramSnapshot& before,
                                    const obs::HistogramSnapshot& after) {
  obs::HistogramSnapshot delta;
  for (size_t i = 0; i < delta.buckets.size(); ++i) {
    delta.buckets[i] = after.buckets[i] - before.buckets[i];
  }
  delta.count = after.count - before.count;
  delta.sum = after.sum - before.sum;
  return delta;
}

void SessionSweep(PragueServer& server, const Workbench& bench,
                  const std::vector<VisualQuerySpec>& queries,
                  BenchJsonWriter& json) {
  TablePrinter table({"clients", "depth", "runs", "sessions/s", "runs/s",
                      "p50 RTT (ms)", "p95 RTT (ms)", "p99 RTT (ms)",
                      "srv p95 (µs)", "truncated"});
  for (size_t clients : {1u, 4u, 8u, 16u, 64u}) {
    for (size_t depth : {1u, 8u}) {
      std::vector<std::vector<double>> latencies(clients);
      std::atomic<size_t> truncated{0};
      const obs::HistogramSnapshot before =
          obs::ServerMetrics::Get().run_latency_us->Snapshot();
      Stopwatch wall;
      std::vector<std::thread> pool;
      pool.reserve(clients);
      for (size_t c = 0; c < clients; ++c) {
        pool.emplace_back([&, c] {
          for (size_t i = 0; i < kSessionsPerClient; ++i) {
            const VisualQuerySpec& spec =
                queries[(c * kSessionsPerClient + i) % queries.size()];
            truncated.fetch_add(RunOneSession(server.port(), bench, spec,
                                              depth, &latencies[c]));
          }
        });
      }
      for (std::thread& t : pool) t.join();
      const double seconds = wall.ElapsedSeconds();
      const obs::HistogramSnapshot server_hist = DiffSnapshot(
          before, obs::ServerMetrics::Get().run_latency_us->Snapshot());

      std::vector<double> all;
      for (const auto& per_client : latencies) {
        all.insert(all.end(), per_client.begin(), per_client.end());
      }
      std::sort(all.begin(), all.end());
      const size_t sessions = clients * kSessionsPerClient;
      const size_t runs = sessions * depth;
      const double session_rate = static_cast<double>(sessions) / seconds;
      const double run_rate = static_cast<double>(runs) / seconds;
      const double p50 = Percentile(all, 0.50) * 1000;
      const double p95 = Percentile(all, 0.95) * 1000;
      const double p99 = Percentile(all, 0.99) * 1000;
      table.AddRow({std::to_string(clients), std::to_string(depth),
                    std::to_string(runs), Fmt(session_rate, 1),
                    Fmt(run_rate, 1), Fmt(p50, 3), Fmt(p95, 3), Fmt(p99, 3),
                    Fmt(server_hist.Quantile(0.95), 1),
                    std::to_string(truncated.load())});
      json.Add("{\"phase\": \"sessions\", \"clients\": " +
               std::to_string(clients) +
               ", \"depth\": " + std::to_string(depth) +
               ", \"sessions\": " + std::to_string(sessions) +
               ", \"runs\": " + std::to_string(runs) +
               ", \"sessions_per_sec\": " + Fmt(session_rate, 2) +
               ", \"runs_per_sec\": " + Fmt(run_rate, 2) +
               ", \"run_p50_ms\": " + Fmt(p50, 4) +
               ", \"run_p95_ms\": " + Fmt(p95, 4) +
               ", \"run_p99_ms\": " + Fmt(p99, 4) +
               // The executor-pool view of the same runs, from the
               // prague_server_run_latency_us delta across this cell.
               ", \"server_p50_us\": " + Fmt(server_hist.Quantile(0.50), 2) +
               ", \"server_p95_us\": " + Fmt(server_hist.Quantile(0.95), 2) +
               ", \"server_p99_us\": " + Fmt(server_hist.Quantile(0.99), 2) +
               ", \"timeout_ms\": " + std::to_string(TimeoutMs()) +
               ", \"truncated\": " + std::to_string(truncated.load()) + "}");
    }
  }
  table.Print();
}

// Phase 3 — shard sweep: the same wire sessions against servers whose
// SessionManager runs shard-parallel execution (praguedb serve --shards=N),
// crossed with client counts. Similarity queries dominate here — their
// Run() is the expensive phase the scatter/gather accelerates — and the
// speedup column is this cell's p50 against the shards=1 cell at the same
// client count. Results are bit-identical across shard counts (the
// determinism property of core/shard_exec.h), so the sweep measures pure
// latency, not answer drift.
void ShardSweep(const Workbench& bench,
                const std::vector<VisualQuerySpec>& queries,
                BenchJsonWriter& json) {
  constexpr size_t kShardSessionsPerClient = 6;
  TablePrinter table({"shards", "clients", "runs", "runs/s", "p50 RTT (ms)",
                      "p95 RTT (ms)", "speedup p50"});
  std::vector<std::pair<size_t, double>> baseline_p50;  // clients → shards=1
  for (size_t shards : {1u, 2u, 4u, 8u}) {
    PragueConfig config;
    config.shards = shards;
    SessionManager manager(bench.snapshot, config);
    PragueServerOptions options;
    options.port = 0;
    PragueServer server(&manager, options);
    if (Status st = server.Start(); !st.ok()) {
      std::fprintf(stderr, "shard sweep: %s\n", st.ToString().c_str());
      return;
    }
    for (size_t clients : {1u, 8u}) {
      std::vector<std::vector<double>> latencies(clients);
      std::atomic<size_t> truncated{0};
      Stopwatch wall;
      std::vector<std::thread> pool;
      pool.reserve(clients);
      for (size_t c = 0; c < clients; ++c) {
        pool.emplace_back([&, c] {
          for (size_t i = 0; i < kShardSessionsPerClient; ++i) {
            const VisualQuerySpec& spec =
                queries[(c * kShardSessionsPerClient + i) % queries.size()];
            truncated.fetch_add(RunOneSession(server.port(), bench, spec,
                                              /*depth=*/1, &latencies[c]));
          }
        });
      }
      for (std::thread& t : pool) t.join();
      const double seconds = wall.ElapsedSeconds();
      std::vector<double> all;
      for (const auto& per_client : latencies) {
        all.insert(all.end(), per_client.begin(), per_client.end());
      }
      std::sort(all.begin(), all.end());
      const size_t runs = clients * kShardSessionsPerClient;
      const double run_rate = static_cast<double>(runs) / seconds;
      const double p50 = Percentile(all, 0.50) * 1000;
      const double p95 = Percentile(all, 0.95) * 1000;
      double speedup = 1.0;
      if (shards == 1) {
        baseline_p50.emplace_back(clients, p50);
      } else {
        for (const auto& [base_clients, base_p50] : baseline_p50) {
          if (base_clients == clients && p50 > 0) speedup = base_p50 / p50;
        }
      }
      table.AddRow({std::to_string(shards), std::to_string(clients),
                    std::to_string(runs), Fmt(run_rate, 1), Fmt(p50, 3),
                    Fmt(p95, 3), Fmt(speedup, 2)});
      json.Add("{\"phase\": \"shards\", \"shards\": " +
               std::to_string(shards) +
               ", \"clients\": " + std::to_string(clients) +
               ", \"runs\": " + std::to_string(runs) +
               ", \"runs_per_sec\": " + Fmt(run_rate, 2) +
               ", \"run_p50_ms\": " + Fmt(p50, 4) +
               ", \"run_p95_ms\": " + Fmt(p95, 4) +
               ", \"speedup_p50\": " + Fmt(speedup, 3) +
               ", \"truncated\": " + std::to_string(truncated.load()) + "}");
    }
    server.Stop();
  }
  table.Print();
}

// One crowd child: holds `count` open sessions until told to let go. The
// fd limit is per process, so sharding the crowd across forked children
// lets the sweep reach 10k connections even though this process may not
// hold 2×10k descriptors itself (server end + client end). Reports a
// uint32 connect/open error count on `status_fd` once ramped, waits for
// one byte on `go_fd`, closes everything, then reports a uint32 close
// error count and exits.
void CrowdChild(uint16_t port, size_t count, int status_fd, int go_fd) {
  std::vector<std::unique_ptr<PragueClient>> crowd;
  crowd.reserve(count);
  uint32_t errors = 0;
  for (size_t i = 0; i < count; ++i) {
    auto client = std::make_unique<PragueClient>();
    if (!client->Connect("127.0.0.1", port).ok() ||
        !client->Open(TimeoutMs()).ok()) {
      ++errors;
      continue;
    }
    crowd.push_back(std::move(client));
  }
  if (::write(status_fd, &errors, sizeof(errors)) != sizeof(errors)) _exit(2);
  char go = 0;
  if (::read(go_fd, &go, 1) != 1) _exit(2);
  errors = 0;
  for (auto& client : crowd) {
    if (!client->Close().ok()) ++errors;
  }
  if (::write(status_fd, &errors, sizeof(errors)) != sizeof(errors)) _exit(2);
  _exit(0);
}

void ConnectionSweep(PragueServer& server, const Workbench& bench,
                     const std::vector<VisualQuerySpec>& queries,
                     BenchJsonWriter& json) {
  constexpr size_t kPerChild = 2500;
  TablePrinter table({"connections", "errors", "open (s)", "probe p50 (ms)",
                      "probe p95 (ms)"});
  for (size_t n : {1000u, 10000u}) {
    const size_t children = (n + kPerChild - 1) / kPerChild;
    std::vector<pid_t> pids;
    std::vector<int> status_fds, go_fds;
    size_t errors = 0;
    bool fork_failed = false;
    Stopwatch ramp;
    for (size_t k = 0; k < children && !fork_failed; ++k) {
      const size_t count = std::min(kPerChild, n - k * kPerChild);
      int status_pipe[2], go_pipe[2];
      if (::pipe(status_pipe) != 0 || ::pipe(go_pipe) != 0) {
        fork_failed = true;
        break;
      }
      pid_t pid = ::fork();
      if (pid < 0) {
        fork_failed = true;
        break;
      }
      if (pid == 0) {
        ::close(status_pipe[0]);
        ::close(go_pipe[1]);
        CrowdChild(server.port(), count, status_pipe[1], go_pipe[0]);
      }
      ::close(status_pipe[1]);
      ::close(go_pipe[0]);
      pids.push_back(pid);
      status_fds.push_back(status_pipe[0]);
      go_fds.push_back(go_pipe[1]);
    }
    if (fork_failed) {
      std::fprintf(stderr, "connection sweep: fork failed, skipping\n");
      for (int fd : status_fds) ::close(fd);
      for (int fd : go_fds) ::close(fd);
      for (pid_t pid : pids) ::waitpid(pid, nullptr, 0);
      return;
    }
    for (int fd : status_fds) {
      uint32_t child_errors = ~0u;
      if (::read(fd, &child_errors, sizeof(child_errors)) !=
          sizeof(child_errors)) {
        child_errors = 1;
      }
      errors += child_errors;
    }
    const double ramp_seconds = ramp.ElapsedSeconds();

    // One probe client runs lock-step sessions through the crowd.
    constexpr size_t kProbeSessions = 50;
    std::vector<double> probe;
    probe.reserve(kProbeSessions);
    for (size_t i = 0; i < kProbeSessions; ++i) {
      RunOneSession(server.port(), bench, queries[i % queries.size()], 1,
                    &probe);
    }
    std::sort(probe.begin(), probe.end());
    const double p50 = Percentile(probe, 0.50) * 1000;
    const double p95 = Percentile(probe, 0.95) * 1000;

    for (size_t k = 0; k < pids.size(); ++k) {
      char go = 1;
      if (::write(go_fds[k], &go, 1) != 1) ++errors;
      uint32_t child_errors = 0;
      if (::read(status_fds[k], &child_errors, sizeof(child_errors)) !=
          sizeof(child_errors)) {
        child_errors = 1;
      }
      errors += child_errors;
      int status = 0;
      ::waitpid(pids[k], &status, 0);
      if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) ++errors;
      ::close(status_fds[k]);
      ::close(go_fds[k]);
    }
    table.AddRow({std::to_string(n), std::to_string(errors),
                  Fmt(ramp_seconds, 2), Fmt(p50, 3), Fmt(p95, 3)});
    json.Add("{\"phase\": \"connections\", \"connections\": " +
             std::to_string(n) + ", \"errors\": " + std::to_string(errors) +
             ", \"ramp_seconds\": " + Fmt(ramp_seconds, 3) +
             ", \"probe_p50_ms\": " + Fmt(p50, 4) +
             ", \"probe_p95_ms\": " + Fmt(p95, 4) + "}");
  }
  table.Print();
}

// Phase 4 — hostile-tenant sweep: one well-behaved probe tenant runs
// lock-step containment sessions while four flooder threads on a shared
// "hostile" tenant hammer heavy similarity RUNs. Three cells on a
// 4-worker server: the probe alone (baseline), the flood with admission
// control off (the probe queues behind hostile bodies on the executor
// pool), and the flood against `--tenant-rate 2` (the hostile bucket
// drains after its burst and nearly every flood RUN is shed BUSY, so the
// probe's percentiles return to the baseline). The flooder deliberately
// ignores the advertised retry-after and retries every 1 ms — bounded
// only so the flood threads do not monopolise the cores the probe is
// measured on.
void HostileSweep(const Workbench& bench,
                  const std::vector<VisualQuerySpec>& probe_queries,
                  const std::vector<VisualQuerySpec>& hostile_queries,
                  BenchJsonWriter& json) {
  constexpr size_t kVictimSessions = 40;
  constexpr size_t kHostileThreads = 4;
  struct Cell {
    const char* name;
    bool flood;
    bool admission;
  };
  const Cell cells[] = {{"alone", false, false},
                        {"flood, admission off", true, false},
                        {"flood, admission on", true, true}};
  TablePrinter table({"cell", "probe p50 (ms)", "probe p95 (ms)",
                      "hostile runs", "hostile BUSY"});
  for (const Cell& cell : cells) {
    SessionManager manager(bench.snapshot);
    PragueServerOptions options;
    options.port = 0;
    options.worker_threads = 4;
    if (cell.admission) {
      options.tenant_rate = 2.0;  // burst 4, then 2 admits/s per tenant
      options.max_runs_per_conn = 8;
      options.max_queued_bytes = 1 << 20;
    }
    PragueServer server(&manager, options);
    if (Status st = server.Start(); !st.ok()) {
      std::fprintf(stderr, "hostile sweep: %s\n", st.ToString().c_str());
      return;
    }
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> hostile_runs{0};
    std::atomic<uint64_t> hostile_busy{0};
    std::vector<std::thread> flood;
    if (cell.flood) {
      flood.reserve(kHostileThreads);
      for (size_t h = 0; h < kHostileThreads; ++h) {
        flood.emplace_back([&, h] {
          PragueClient client;
          if (!client.Connect("127.0.0.1", server.port()).ok()) return;
          if (!client.Open(TimeoutMs(), "hostile").ok()) return;
          FeedQuery(client, bench,
                    hostile_queries[h % hostile_queries.size()]);
          while (!stop.load(std::memory_order_relaxed)) {
            Result<RunReply> run = client.Run();
            if (run.ok()) {
              hostile_runs.fetch_add(1, std::memory_order_relaxed);
            } else if (IsBusy(run.status())) {
              hostile_busy.fetch_add(1, std::memory_order_relaxed);
              std::this_thread::sleep_for(std::chrono::milliseconds(1));
            } else {
              return;  // dropped by the server; the cell carries on
            }
          }
          client.Close();
        });
      }
      // Let the flood ramp (and, with admission on, burn its burst)
      // before the probe starts measuring.
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
    // The probe stays anonymous: each session is its own tenant with a
    // fresh default bucket, the well-behaved-client shape the admission
    // defaults are sized for.
    std::vector<double> victim;
    victim.reserve(kVictimSessions);
    for (size_t i = 0; i < kVictimSessions; ++i) {
      RunOneSession(server.port(), bench,
                    probe_queries[i % probe_queries.size()], /*depth=*/1,
                    &victim);
    }
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& t : flood) t.join();
    server.Stop();
    std::sort(victim.begin(), victim.end());
    const double p50 = Percentile(victim, 0.50) * 1000;
    const double p95 = Percentile(victim, 0.95) * 1000;
    table.AddRow({cell.name, Fmt(p50, 3), Fmt(p95, 3),
                  std::to_string(hostile_runs.load()),
                  std::to_string(hostile_busy.load())});
    json.Add(std::string("{\"phase\": \"hostile\", \"cell\": \"") +
             cell.name + "\", \"flood\": " + (cell.flood ? "true" : "false") +
             ", \"admission\": " + (cell.admission ? "true" : "false") +
             ", \"tenant_rate\": " + Fmt(cell.admission ? 2.0 : 0.0, 1) +
             ", \"probe_sessions\": " + std::to_string(kVictimSessions) +
             ", \"probe_p50_ms\": " + Fmt(p50, 4) +
             ", \"probe_p95_ms\": " + Fmt(p95, 4) +
             ", \"hostile_threads\": " +
             std::to_string(cell.flood ? kHostileThreads : 0) +
             ", \"hostile_runs\": " + std::to_string(hostile_runs.load()) +
             ", \"hostile_busy\": " + std::to_string(hostile_busy.load()) +
             "}");
  }
  table.Print();
}

// Phase 5 — durability sweep: APPEND throughput and latency against a
// --data-dir server, fsync on/off crossed with concurrent appender
// clients. Every APPEND is acknowledged only after its WAL record is
// durable (log-then-publish), so with fsync on the cell price is the
// fsync — and the appends/fsync column shows group commit amortizing it
// as concurrency grows (concurrent appenders share one leader fsync).
// With fsync off the WAL is buffered writes only: the latency floor, at
// the cost of the newest appends on crash. Each cell ends with the two
// restart numbers the storage engine exists for: reopen with the cell's
// WAL tail (replay is O(tail)) and reopen after a checkpoint (O(1) mmap,
// no replay). σ-crossing repair is pinned off (reclassify=0) so cells
// measure durability overhead, not index maintenance variance.
void DurabilitySweep(const Workbench& bench, BenchJsonWriter& json) {
  constexpr size_t kAppendsPerClient = 8;
  const char* kPatterns[] = {
      "(a:C)-(b:C), (b)-(c:O)",
      "(a:C)-(b:N), (b)-(c:C)",
      "(a:C)-(b:S)",
      "(a:O)-(b:C), (b)-(c:C), (c)-(a)",
  };
  const std::string dir = "/tmp/prague_bench_durability_" +
                          std::to_string(static_cast<unsigned long>(getpid()));
  TablePrinter table({"fsync", "clients", "appends", "appends/s",
                      "p50 (ms)", "p95 (ms)", "appends/fsync",
                      "replay open (ms)", "ckpt open (ms)"});
  for (bool sync : {true, false}) {
    for (size_t clients : {1u, 4u, 16u}) {
      // A fresh data directory per cell: sweep leftovers, re-bootstrap.
      if (Result<std::vector<std::string>> files = storage::ListDir(dir);
          files.ok()) {
        for (const std::string& f : *files) {
          (void)storage::RemoveFile(storage::JoinPath(dir, f));
        }
      }
      storage::StorageOptions sopts;
      sopts.sync = sync;
      Result<std::unique_ptr<storage::StorageEngine>> boot =
          storage::StorageEngine::Bootstrap(dir, *bench.snapshot, bench.alpha,
                                            sopts);
      if (!boot.ok()) {
        std::fprintf(stderr, "durability sweep: %s\n",
                     boot.status().ToString().c_str());
        return;
      }
      std::shared_ptr<storage::StorageEngine> engine = std::move(*boot);
      SessionManager manager(engine->recovered().snapshot);
      manager.AttachStorage(engine);
      PragueServerOptions options;
      options.port = 0;
      PragueServer server(&manager, options);
      if (Status st = server.Start(); !st.ok()) {
        std::fprintf(stderr, "durability sweep: %s\n", st.ToString().c_str());
        return;
      }

      const storage::StorageStats before = engine->Stats();
      std::vector<std::vector<double>> latencies(clients);
      Stopwatch wall;
      std::vector<std::thread> pool;
      pool.reserve(clients);
      for (size_t c = 0; c < clients; ++c) {
        pool.emplace_back([&, c] {
          PragueClient client;
          if (!client.Connect("127.0.0.1", server.port()).ok()) std::abort();
          if (!client.Open(TimeoutMs()).ok()) std::abort();
          for (size_t i = 0; i < kAppendsPerClient; ++i) {
            const size_t which = (c * kAppendsPerClient + i) %
                                 (sizeof(kPatterns) / sizeof(kPatterns[0]));
            Stopwatch one;
            Result<AppendReply> reply =
                client.Append({kPatterns[which]}, /*alpha=*/-1,
                              /*reclassify=*/0);
            if (!reply.ok()) std::abort();
            latencies[c].push_back(one.ElapsedSeconds());
          }
          if (!client.Close().ok()) std::abort();
        });
      }
      for (std::thread& t : pool) t.join();
      const double seconds = wall.ElapsedSeconds();
      const storage::StorageStats after = engine->Stats();
      server.Stop();

      std::vector<double> all;
      for (const auto& per_client : latencies) {
        all.insert(all.end(), per_client.begin(), per_client.end());
      }
      std::sort(all.begin(), all.end());
      const size_t appends = clients * kAppendsPerClient;
      const double rate = static_cast<double>(appends) / seconds;
      const double p50 = Percentile(all, 0.50) * 1000;
      const double p95 = Percentile(all, 0.95) * 1000;
      const uint64_t syncs = after.wal_syncs - before.wal_syncs;
      const double per_fsync =
          syncs > 0 ? static_cast<double>(appends) / static_cast<double>(syncs)
                    : 0.0;

      // Restart with the cell's WAL tail: replay is O(appends logged).
      engine.reset();  // release the directory before reopening
      Stopwatch replay_open;
      Result<std::unique_ptr<storage::StorageEngine>> reopened =
          storage::StorageEngine::Open(dir, sopts);
      const double replay_ms = replay_open.ElapsedSeconds() * 1000;
      if (!reopened.ok()) {
        std::fprintf(stderr, "durability sweep reopen: %s\n",
                     reopened.status().ToString().c_str());
        return;
      }
      const uint64_t replayed = (*reopened)->Stats().recovery_replayed_records;

      // Checkpoint, then restart again: the O(1) mmap path, zero replay.
      Status ckpt = (*reopened)->Checkpoint(*(*reopened)->recovered().snapshot,
                                            bench.alpha);
      if (!ckpt.ok()) {
        std::fprintf(stderr, "durability sweep checkpoint: %s\n",
                     ckpt.ToString().c_str());
        return;
      }
      reopened->reset();
      Stopwatch ckpt_open;
      Result<std::unique_ptr<storage::StorageEngine>> fast =
          storage::StorageEngine::Open(dir, sopts);
      const double ckpt_ms = ckpt_open.ElapsedSeconds() * 1000;
      if (!fast.ok() || (*fast)->Stats().recovery_replayed_records != 0) {
        std::fprintf(stderr, "durability sweep: checkpointed open replayed\n");
        return;
      }

      table.AddRow({sync ? "on" : "off", std::to_string(clients),
                    std::to_string(appends), Fmt(rate, 1), Fmt(p50, 3),
                    Fmt(p95, 3), Fmt(per_fsync, 1), Fmt(replay_ms, 2),
                    Fmt(ckpt_ms, 2)});
      json.Add(std::string("{\"phase\": \"durability\", \"fsync\": ") +
               (sync ? "true" : "false") +
               ", \"clients\": " + std::to_string(clients) +
               ", \"appends\": " + std::to_string(appends) +
               ", \"appends_per_sec\": " + Fmt(rate, 2) +
               ", \"append_p50_ms\": " + Fmt(p50, 4) +
               ", \"append_p95_ms\": " + Fmt(p95, 4) +
               ", \"wal_appends\": " +
               std::to_string(after.wal_appends - before.wal_appends) +
               ", \"wal_syncs\": " + std::to_string(syncs) +
               ", \"appends_per_fsync\": " + Fmt(per_fsync, 2) +
               ", \"wal_bytes\": " + std::to_string(after.wal_bytes) +
               ", \"replay_open_ms\": " + Fmt(replay_ms, 3) +
               ", \"replayed_records\": " + std::to_string(replayed) +
               ", \"checkpoint_open_ms\": " + Fmt(ckpt_ms, 3) + "}");
    }
  }
  // Leave no bench litter behind.
  if (Result<std::vector<std::string>> files = storage::ListDir(dir);
      files.ok()) {
    for (const std::string& f : *files) {
      (void)storage::RemoveFile(storage::JoinPath(dir, f));
    }
  }
  table.Print();

  // Raw WAL group commit: the server path above serializes appends on the
  // SessionManager writer lock (one fsync each), so the leader/follower
  // fsync sharing only shows where it lives — concurrent WalWriter::Append
  // calls. N threads race records into one log; the records/fsync column
  // is the amortization factor pipelined mutations would enjoy.
  constexpr size_t kRecordsPerThread = 64;
  const std::string payload(4096, 'x');
  TablePrinter wal_table({"threads", "records", "records/s", "p50 (ms)",
                          "records/fsync"});
  for (size_t threads : {1u, 4u, 16u}) {
    const std::string wal_path = dir + ".wal";
    (void)storage::RemoveFile(wal_path);
    storage::WalWriterOptions wopts;
    wopts.sync = true;
    Result<std::unique_ptr<storage::WalWriter>> writer =
        storage::WalWriter::Open(wal_path, 0, wopts);
    if (!writer.ok()) {
      std::fprintf(stderr, "wal sweep: %s\n",
                   writer.status().ToString().c_str());
      return;
    }
    std::vector<std::vector<double>> latencies(threads);
    Stopwatch wall;
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        for (size_t i = 0; i < kRecordsPerThread; ++i) {
          Stopwatch one;
          if (!(*writer)
                   ->Append(storage::WalRecordType::kAppendGraphs, payload)
                   .ok()) {
            std::abort();
          }
          latencies[t].push_back(one.ElapsedSeconds());
        }
      });
    }
    for (std::thread& t : pool) t.join();
    const double seconds = wall.ElapsedSeconds();
    const size_t records = threads * kRecordsPerThread;
    const double rate = static_cast<double>(records) / seconds;
    std::vector<double> all;
    for (const auto& per_thread : latencies) {
      all.insert(all.end(), per_thread.begin(), per_thread.end());
    }
    std::sort(all.begin(), all.end());
    const double p50 = Percentile(all, 0.50) * 1000;
    const uint64_t syncs = (*writer)->syncs();
    const double per_fsync =
        syncs > 0 ? static_cast<double>(records) / static_cast<double>(syncs)
                  : 0.0;
    wal_table.AddRow({std::to_string(threads), std::to_string(records),
                      Fmt(rate, 1), Fmt(p50, 3), Fmt(per_fsync, 1)});
    json.Add("{\"phase\": \"wal_group_commit\", \"threads\": " +
             std::to_string(threads) +
             ", \"records\": " + std::to_string(records) +
             ", \"payload_bytes\": " + std::to_string(payload.size()) +
             ", \"records_per_sec\": " + Fmt(rate, 2) +
             ", \"append_p50_ms\": " + Fmt(p50, 4) +
             ", \"wal_syncs\": " + std::to_string(syncs) +
             ", \"records_per_fsync\": " + Fmt(per_fsync, 2) + "}");
    writer->reset();
    (void)storage::RemoveFile(wal_path);
  }
  wal_table.Print();
}

// Phase 6 — observability overhead: the identical RUN workload against a
// server with the operator plane off, then on (watchdog + HTTP exporter
// with a 10 Hz scraper hammering GET /metrics for the whole cell, i.e. a
// Prometheus hitting the default scrape interval ×1000). The acceptance
// property is that the scraped column's RUN percentiles match the quiet
// column: rendering happens from a registry snapshot on the exporter
// thread, so the query path never pays for a scrape.
void ObservabilitySweep(const Workbench& bench,
                        const std::vector<VisualQuerySpec>& queries,
                        BenchJsonWriter& json) {
  constexpr size_t kClients = 8;
  constexpr size_t kDepth = 8;
  // Enough sessions that each cell runs for a couple of seconds — the
  // 10 Hz scraper must land tens of scrapes inside the measured window.
  constexpr size_t kObsSessionsPerClient = 8 * kSessionsPerClient;
  TablePrinter table({"scraper", "runs", "runs/s", "p50 RTT (ms)",
                      "p95 RTT (ms)", "scrapes", "render p95 (µs)"});
  for (bool scraped : {false, true}) {
    SessionManager manager(bench.snapshot);
    obs::Watchdog watchdog;
    watchdog.set_trace_ring(&manager.mutable_traces());
    PragueServerOptions options;
    options.port = 0;
    options.watchdog = &watchdog;
    PragueServer server(&manager, options);
    if (!server.Start().ok()) std::abort();
    watchdog.Start();

    std::unique_ptr<obs::HttpExporter> exporter;
    std::atomic<bool> stop_scraper{false};
    std::atomic<size_t> scrapes{0};
    std::thread scraper;
    const obs::HistogramSnapshot render_before =
        obs::MetricsRegistry::Global()
            .GetHistogram("prague_http_scrape_render_us")
            ->Snapshot();
    if (scraped) {
      exporter = std::make_unique<obs::HttpExporter>();
      if (!exporter->Start().ok()) std::abort();
      scraper = std::thread([&] {
        while (!stop_scraper.load()) {
          // A raw scrape exactly like the lifecycle tests do it.
          int fd = ::socket(AF_INET, SOCK_STREAM, 0);
          if (fd >= 0) {
            sockaddr_in addr{};
            addr.sin_family = AF_INET;
            addr.sin_port = htons(exporter->port());
            addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
            if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                          sizeof(addr)) == 0) {
              const char request[] =
                  "GET /metrics HTTP/1.1\r\nHost: b\r\nConnection: "
                  "close\r\n\r\n";
              (void)!::send(fd, request, sizeof(request) - 1, MSG_NOSIGNAL);
              char buf[16384];
              while (::recv(fd, buf, sizeof(buf), 0) > 0) {
              }
              scrapes.fetch_add(1);
            }
            ::close(fd);
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
      });
    }

    std::vector<std::vector<double>> latencies(kClients);
    std::atomic<size_t> truncated{0};
    Stopwatch wall;
    std::vector<std::thread> pool;
    pool.reserve(kClients);
    for (size_t c = 0; c < kClients; ++c) {
      pool.emplace_back([&, c] {
        for (size_t i = 0; i < kObsSessionsPerClient; ++i) {
          const VisualQuerySpec& spec =
              queries[(c * kObsSessionsPerClient + i) % queries.size()];
          truncated.fetch_add(RunOneSession(server.port(), bench, spec,
                                            kDepth, &latencies[c]));
        }
      });
    }
    for (std::thread& t : pool) t.join();
    const double seconds = wall.ElapsedSeconds();

    stop_scraper.store(true);
    if (scraper.joinable()) scraper.join();
    const obs::HistogramSnapshot render = DiffSnapshot(
        render_before, obs::MetricsRegistry::Global()
                           .GetHistogram("prague_http_scrape_render_us")
                           ->Snapshot());
    if (exporter) exporter->Stop();
    server.Stop();
    watchdog.Stop();

    std::vector<double> all;
    for (const auto& per_client : latencies) {
      all.insert(all.end(), per_client.begin(), per_client.end());
    }
    std::sort(all.begin(), all.end());
    const size_t runs = kClients * kObsSessionsPerClient * kDepth;
    const double run_rate = static_cast<double>(runs) / seconds;
    const double p50 = Percentile(all, 0.50) * 1000;
    const double p95 = Percentile(all, 0.95) * 1000;
    table.AddRow({scraped ? "10 Hz" : "off", std::to_string(runs),
                  Fmt(run_rate, 1), Fmt(p50, 3), Fmt(p95, 3),
                  std::to_string(scrapes.load()),
                  Fmt(render.Quantile(0.95), 1)});
    json.Add(std::string("{\"phase\": \"observability\", \"scraper\": ") +
             (scraped ? "true" : "false") +
             ", \"clients\": " + std::to_string(kClients) +
             ", \"depth\": " + std::to_string(kDepth) +
             ", \"runs\": " + std::to_string(runs) +
             ", \"runs_per_sec\": " + Fmt(run_rate, 2) +
             ", \"run_p50_ms\": " + Fmt(p50, 4) +
             ", \"run_p95_ms\": " + Fmt(p95, 4) +
             ", \"scrapes\": " + std::to_string(scrapes.load()) +
             ", \"scrape_render_p50_us\": " + Fmt(render.Quantile(0.50), 2) +
             ", \"scrape_render_p95_us\": " + Fmt(render.Quantile(0.95), 2) +
             ", \"truncated\": " + std::to_string(truncated.load()) + "}");
  }
  table.Print();
}

}  // namespace

int main() {
  const size_t graphs = AidsGraphCount() / 4;
  Banner("server", "wire-protocol sessions over loopback, |D| = " +
                       std::to_string(graphs));
  Workbench bench = BuildAidsWorkbench(graphs);
  std::vector<VisualQuerySpec> queries = ContainmentQueries(bench);
  if (queries.empty()) {
    std::fprintf(stderr, "no queries; aborting\n");
    return 1;
  }

  SessionManager manager(bench.snapshot);
  PragueServerOptions options;
  options.port = 0;  // ephemeral; thread counts default to the hardware
  PragueServer server(&manager, options);
  if (Status st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "server: %s\n", st.ToString().c_str());
    return 1;
  }

  BenchJsonWriter json("BENCH_server.json");
  SessionSweep(server, bench, queries, json);
  ConnectionSweep(server, bench, queries, json);
  server.Stop();

  // Shard sweep runs its own servers (one per shard count) over the heavy
  // similarity workload, where the scattered Run() phases dominate.
  std::vector<VisualQuerySpec> similarity = AidsQueries(bench);
  if (!similarity.empty()) {
    ShardSweep(bench, similarity, json);
  }

  // Hostile-tenant sweep (own servers): probe latency alone, under a
  // hostile flood, and under the same flood with admission control on.
  HostileSweep(bench, queries, similarity.empty() ? queries : similarity,
               json);

  // Durability sweep (own --data-dir servers): APPEND latency with fsync
  // on/off, group-commit amortization, and the two restart paths.
  DurabilitySweep(bench, json);

  // Observability sweep (own servers): the same RUN workload with the
  // operator plane off vs scraped at 10 Hz.
  ObservabilitySweep(bench, queries, json);
  std::printf("wrote %s\n", json.path().c_str());
  return 0;
}
