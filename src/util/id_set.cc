#include "util/id_set.h"

#include <algorithm>

namespace prague {

IdSet::IdSet(std::vector<GraphId> ids) : ids_(std::move(ids)) {
  std::sort(ids_.begin(), ids_.end());
  ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
}

IdSet::IdSet(std::initializer_list<GraphId> ids)
    : IdSet(std::vector<GraphId>(ids)) {}

IdSet IdSet::Universe(GraphId n) {
  IdSet out;
  out.ids_.resize(n);
  for (GraphId i = 0; i < n; ++i) out.ids_[i] = i;
  return out;
}

bool IdSet::Contains(GraphId id) const {
  return std::binary_search(ids_.begin(), ids_.end(), id);
}

void IdSet::Insert(GraphId id) {
  auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it == ids_.end() || *it != id) ids_.insert(it, id);
}

void IdSet::Erase(GraphId id) {
  auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it != ids_.end() && *it == id) ids_.erase(it);
}

IdSet IdSet::Intersect(const IdSet& other) const {
  IdSet out;
  out.ids_.reserve(std::min(ids_.size(), other.ids_.size()));
  std::set_intersection(ids_.begin(), ids_.end(), other.ids_.begin(),
                        other.ids_.end(), std::back_inserter(out.ids_));
  return out;
}

IdSet IdSet::Union(const IdSet& other) const {
  IdSet out;
  out.ids_.reserve(ids_.size() + other.ids_.size());
  std::set_union(ids_.begin(), ids_.end(), other.ids_.begin(),
                 other.ids_.end(), std::back_inserter(out.ids_));
  return out;
}

IdSet IdSet::Subtract(const IdSet& other) const {
  IdSet out;
  out.ids_.reserve(ids_.size());
  std::set_difference(ids_.begin(), ids_.end(), other.ids_.begin(),
                      other.ids_.end(), std::back_inserter(out.ids_));
  return out;
}

void IdSet::IntersectWith(const IdSet& other) { *this = Intersect(other); }

void IdSet::UnionWith(const IdSet& other) { *this = Union(other); }

void IdSet::SubtractWith(const IdSet& other) { *this = Subtract(other); }

bool IdSet::IsSubsetOf(const IdSet& other) const {
  return std::includes(other.ids_.begin(), other.ids_.end(), ids_.begin(),
                       ids_.end());
}

std::string IdSet::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < ids_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(ids_[i]);
  }
  out += "}";
  return out;
}

}  // namespace prague
