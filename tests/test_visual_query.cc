// VisualQuery: formulation ids, connectivity enforcement, deletion rules,
// compiled-graph mapping, mask conversions.

#include <gtest/gtest.h>

#include "core/visual_query.h"
#include "test_fixtures.h"

namespace prague {
namespace {

using testing::kC;
using testing::kO;
using testing::kS;

TEST(VisualQueryTest, FormulationIdsAreSequential) {
  VisualQuery q;
  NodeId a = q.AddNode(kC), b = q.AddNode(kC), c = q.AddNode(kS);
  Result<FormulationId> e1 = q.AddEdge(a, b);
  Result<FormulationId> e2 = q.AddEdge(b, c);
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(*e1, 1);
  EXPECT_EQ(*e2, 2);
  EXPECT_EQ(q.EdgeCount(), 2u);
  EXPECT_EQ(q.LastFormulationId(), 2);
}

TEST(VisualQueryTest, RejectsDisconnectedEdge) {
  VisualQuery q;
  NodeId a = q.AddNode(kC), b = q.AddNode(kC);
  NodeId c = q.AddNode(kS), d = q.AddNode(kS);
  ASSERT_TRUE(q.AddEdge(a, b).ok());
  EXPECT_FALSE(q.AddEdge(c, d).ok());  // would disconnect
}

TEST(VisualQueryTest, RejectsDuplicateAndSelfLoop) {
  VisualQuery q;
  NodeId a = q.AddNode(kC), b = q.AddNode(kC);
  ASSERT_TRUE(q.AddEdge(a, b).ok());
  EXPECT_FALSE(q.AddEdge(b, a).ok());
  EXPECT_FALSE(q.AddEdge(a, a).ok());
}

TEST(VisualQueryTest, DeleteRules) {
  VisualQuery q;
  NodeId a = q.AddNode(kC), b = q.AddNode(kC), c = q.AddNode(kS);
  Result<FormulationId> e1 = q.AddEdge(a, b);
  Result<FormulationId> e2 = q.AddEdge(b, c);
  ASSERT_TRUE(e1.ok() && e2.ok());
  // Deleting either edge of a path leaves a single connected edge.
  EXPECT_TRUE(q.CanDelete(*e1));
  EXPECT_TRUE(q.CanDelete(*e2));
  ASSERT_TRUE(q.DeleteEdge(*e1).ok());
  EXPECT_EQ(q.EdgeCount(), 1u);
  // Last edge cannot be deleted (fragment must stay non-empty).
  EXPECT_FALSE(q.CanDelete(*e2));
  EXPECT_FALSE(q.DeleteEdge(*e2).ok());
  // Deleted edge stays dead.
  EXPECT_FALSE(q.DeleteEdge(*e1).ok());
  EXPECT_FALSE(q.GetEdge(*e1).has_value());
}

TEST(VisualQueryTest, BridgeDeletionDisconnectsAndIsRejected) {
  VisualQuery q;
  NodeId a = q.AddNode(kC), b = q.AddNode(kC), c = q.AddNode(kS);
  NodeId d = q.AddNode(kO);
  ASSERT_TRUE(q.AddEdge(a, b).ok());
  Result<FormulationId> bridge = q.AddEdge(b, c);
  ASSERT_TRUE(bridge.ok());
  ASSERT_TRUE(q.AddEdge(c, d).ok());
  EXPECT_FALSE(q.CanDelete(*bridge));
  EXPECT_FALSE(q.DeleteEdge(*bridge).ok());
}

TEST(VisualQueryTest, LeafEdgeDeletionDropsOrphanNode) {
  VisualQuery q;
  NodeId a = q.AddNode(kC), b = q.AddNode(kC), c = q.AddNode(kS);
  ASSERT_TRUE(q.AddEdge(a, b).ok());
  Result<FormulationId> leaf = q.AddEdge(b, c);
  ASSERT_TRUE(leaf.ok());
  EXPECT_EQ(q.CurrentGraph().NodeCount(), 3u);
  ASSERT_TRUE(q.DeleteEdge(*leaf).ok());
  EXPECT_EQ(q.CurrentGraph().NodeCount(), 2u);  // orphan S dropped
}

TEST(VisualQueryTest, CompiledGraphMapsBothWays) {
  VisualQuery q;
  NodeId a = q.AddNode(kC), b = q.AddNode(kC), c = q.AddNode(kS);
  Result<FormulationId> e1 = q.AddEdge(a, b);
  Result<FormulationId> e2 = q.AddEdge(b, c);
  ASSERT_TRUE(e1.ok() && e2.ok());
  const Graph& g = q.CurrentGraph();
  ASSERT_EQ(g.EdgeCount(), 2u);
  for (EdgeId e = 0; e < g.EdgeCount(); ++e) {
    FormulationId ell = q.FormulationIdOfGraphEdge(e);
    std::optional<EdgeId> back = q.GraphEdgeOfFormulationId(ell);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, e);
  }
}

TEST(VisualQueryTest, MaskConversionRoundTrip) {
  VisualQuery q;
  NodeId a = q.AddNode(kC), b = q.AddNode(kC), c = q.AddNode(kS);
  NodeId d = q.AddNode(kO);
  ASSERT_TRUE(q.AddEdge(a, b).ok());
  Result<FormulationId> e2 = q.AddEdge(b, c);
  ASSERT_TRUE(e2.ok());
  ASSERT_TRUE(q.AddEdge(c, d).ok());
  // Delete e2's sibling? Keep all; test round-trip on arbitrary masks.
  const Graph& g = q.CurrentGraph();
  for (EdgeMask gmask = 1; gmask < (EdgeMask{1} << g.EdgeCount()); ++gmask) {
    FormulationMask fmask = q.ToFormulationMask(gmask);
    EXPECT_EQ(q.ToGraphMask(fmask), gmask);
  }
  EXPECT_EQ(q.FullMask(), q.ToFormulationMask((EdgeMask{1} << 3) - 1));
}

TEST(VisualQueryTest, MasksStableAcrossDeletion) {
  VisualQuery q;
  NodeId a = q.AddNode(kC), b = q.AddNode(kC), c = q.AddNode(kS);
  NodeId d = q.AddNode(kO);
  Result<FormulationId> e1 = q.AddEdge(a, b);
  Result<FormulationId> e2 = q.AddEdge(b, c);
  Result<FormulationId> e3 = q.AddEdge(c, d);
  ASSERT_TRUE(e1.ok() && e2.ok() && e3.ok());
  ASSERT_TRUE(q.DeleteEdge(*e1).ok());
  // e2 and e3 keep their formulation ids; compiled edges renumber.
  EXPECT_EQ(q.FullMask(), FormulationBit(*e2) | FormulationBit(*e3));
  const Graph& g = q.CurrentGraph();
  ASSERT_EQ(g.EdgeCount(), 2u);
  EXPECT_EQ(q.GraphEdgeOfFormulationId(*e1), std::nullopt);
  EXPECT_TRUE(q.GraphEdgeOfFormulationId(*e2).has_value());
}

TEST(VisualQueryTest, EdgeCapEnforced) {
  VisualQuery q;
  NodeId center = q.AddNode(kC);
  Status last = Status::OK();
  for (size_t i = 0; i < kMaxVisualQueryEdges + 1; ++i) {
    NodeId n = q.AddNode(kC);
    Result<FormulationId> r = q.AddEdge(center, n);
    if (!r.ok()) {
      last = r.status();
      break;
    }
  }
  EXPECT_EQ(last.code(), Status::Code::kFailedPrecondition);
  EXPECT_EQ(q.EdgeCount(), kMaxVisualQueryEdges);
}

TEST(VisualQueryTest, AliveEdgeIdsAscending) {
  VisualQuery q;
  NodeId a = q.AddNode(kC), b = q.AddNode(kC), c = q.AddNode(kS);
  Result<FormulationId> e1 = q.AddEdge(a, b);
  Result<FormulationId> e2 = q.AddEdge(b, c);
  ASSERT_TRUE(e1.ok() && e2.ok());
  ASSERT_TRUE(q.DeleteEdge(*e1).ok());
  NodeId d = q.AddNode(kO);
  Result<FormulationId> e3 = q.AddEdge(c, d);
  ASSERT_TRUE(e3.ok());
  EXPECT_EQ(*e3, 3);  // ids are never reused
  EXPECT_EQ(q.AliveEdgeIds(), (std::vector<FormulationId>{2, 3}));
}

}  // namespace
}  // namespace prague
