// Table IV reproduction: query modification cost (ms) on the AIDS-like
// dataset. Protocol: formulate Q1-Q4 up to the k-th edge (k = 4..|q|),
// then delete the earliest deletable edge (the paper always deletes e1 —
// when e1 is a bridge, connectivity forces the next candidate).
//
// Paper shape: PRAGUE's modification cost is cognitively negligible
// (tens of ms at 40K scale, mostly 0-37 ms) — trivially hidden under the
// ≥2 s the user needs to perform the deletion. The GBLENDER columns show
// the full-replay alternative for contrast.

#include <cstdio>

#include "bench_common.h"
#include "core/gblender.h"
#include "core/prague_session.h"
#include "util/stopwatch.h"

using namespace prague;
using namespace prague::bench;

namespace {

// Formulates the first `steps` edges of the spec, then deletes the first
// deletable edge. Returns the modification cost in seconds, or -1.
template <typename Session>
double ModifyAfter(Session* session, const VisualQuerySpec& spec,
                   size_t steps) {
  const Graph& q = spec.graph;
  std::vector<NodeId> node_map(q.NodeCount(), kInvalidNode);
  for (size_t i = 0; i < steps; ++i) {
    const Edge& edge = q.GetEdge(spec.sequence[i]);
    for (NodeId n : {edge.u, edge.v}) {
      if (node_map[n] == kInvalidNode) {
        node_map[n] = session->AddNode(q.NodeLabel(n));
      }
    }
    if (!session->AddEdge(node_map[edge.u], node_map[edge.v], edge.label)
             .ok()) {
      return -1;
    }
  }
  for (FormulationId ell = 1; ell <= static_cast<FormulationId>(steps);
       ++ell) {
    if (!session->query().CanDelete(ell)) continue;
    Stopwatch timer;
    auto report = session->DeleteEdge(ell);
    if (!report.ok()) continue;
    return timer.ElapsedSeconds();
  }
  return -1;
}

}  // namespace

int main() {
  Banner("Table IV: query modification cost (ms), AIDS-like dataset",
         "modify after drawing the k-th edge; delete the earliest "
         "deletable edge");
  Workbench bench = BuildAidsWorkbench(AidsGraphCount());
  std::vector<VisualQuerySpec> queries = AidsQueries(bench);

  for (const char* engine : {"PRAGUE", "GBLENDER (full replay)"}) {
    bool prague_engine = std::string(engine) == "PRAGUE";
    std::printf("--- %s ---\n", engine);
    std::vector<std::string> headers = {"query"};
    for (size_t k = 4; k <= 8; ++k) headers.push_back("e" + std::to_string(k));
    TablePrinter table(headers);
    for (const VisualQuerySpec& spec : queries) {
      std::vector<std::string> row = {spec.name};
      for (size_t k = 4; k <= 8; ++k) {
        if (k > spec.graph.EdgeCount()) {
          row.push_back("-");
          continue;
        }
        double seconds;
        if (prague_engine) {
          PragueSession session(bench.snapshot);
          seconds = ModifyAfter(&session, spec, k);
        } else {
          GBlenderSession session(bench.snapshot);
          seconds = ModifyAfter(&session, spec, k);
        }
        row.push_back(seconds < 0 ? "-" : FmtMs(seconds));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "paper shape check: PRAGUE's modification cost is near zero and flat "
      "in k — easily hidden under the >=2s the user takes to delete an "
      "edge.\n");
  return 0;
}
