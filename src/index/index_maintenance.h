// Incremental index maintenance for dynamic databases.
//
// The paper mines and indexes a static D offline. In a deployed system new
// graphs keep arriving; re-mining on every insert is wasteful. This module
// appends graphs to an indexed database and updates every indexed
// fragment's FSG id set *exactly*, using the A2F DAG for anti-monotone
// pruning (a fragment can only occur in the new graph if all of its
// one-edge-smaller subfragments do).
//
// What it cannot do incrementally is change the fragment *sets*: as |D|
// grows the min-support threshold moves, so some indexed frequent
// fragments may fall below it and some DIFs may rise above it (and brand
// new fragments may become frequent). The maintainer detects and reports
// this drift so callers can schedule a full re-mine; until then the
// indexes remain *sound* (every id set is exact; candidate generation
// stays a superset of the truth) but their pruning power slowly decays.

#ifndef PRAGUE_INDEX_INDEX_MAINTENANCE_H_
#define PRAGUE_INDEX_INDEX_MAINTENANCE_H_

#include <vector>

#include "graph/graph.h"
#include "graph/graph_database.h"
#include "index/action_aware_index.h"
#include "index/database_snapshot.h"
#include "util/result.h"

namespace prague {

/// \brief What one AppendGraphs call did.
struct MaintenanceReport {
  size_t graphs_added = 0;
  /// ⌈α·|D|⌉ after the append.
  size_t new_min_support = 0;
  /// A2F vertices whose support is now below the new threshold.
  size_t frequent_below_threshold = 0;
  /// A2I entries whose support is now at/above the new threshold.
  size_t difs_above_threshold = 0;
  /// VF2 containment probes actually run (after DAG pruning).
  size_t probes = 0;
  /// Probes skipped because a subfragment was already absent.
  size_t pruned_probes = 0;
  /// True when any classification drifted — schedule a re-mine.
  bool remine_recommended = false;
  /// Snapshot version the append started from (0 for the in-place API).
  uint64_t from_version = 0;
  /// Snapshot version the append published (0 for the in-place API).
  uint64_t to_version = 0;
};

/// \brief Appends \p graphs to \p db and updates \p indexes in place.
///
/// \p alpha is the mining ratio the indexes were built with (used to
/// recompute the threshold and detect drift). Graphs must be connected
/// and non-empty. On error nothing is modified.
Result<MaintenanceReport> AppendGraphs(GraphDatabase* db,
                                       std::vector<Graph> graphs,
                                       ActionAwareIndexes* indexes,
                                       double alpha);

/// \brief A successor snapshot plus the report describing how it was built.
struct SnapshotAppendResult {
  SnapshotPtr snapshot;
  MaintenanceReport report;
};

/// \brief Copy-on-write append: builds a successor snapshot of \p base with
/// \p graphs added and every index id-set updated, leaving \p base
/// untouched. The successor structurally shares all pre-existing graph
/// storage and every id-set the new graphs do not extend, and carries
/// version base.version() + 1.
///
/// \p graph_labels, when non-null, is the dictionary the incoming graphs'
/// node labels were interned against; they are re-interned into the
/// successor's dictionary (edge labels are passed through unchanged, as
/// praguedb's graph files share one edge-label space). When null the
/// graphs must already use \p base's label ids.
Result<SnapshotAppendResult> AppendGraphs(
    const DatabaseSnapshot& base, std::vector<Graph> graphs, double alpha,
    const LabelDictionary* graph_labels = nullptr);

}  // namespace prague

#endif  // PRAGUE_INDEX_INDEX_MAINTENANCE_H_
