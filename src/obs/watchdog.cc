#include "obs/watchdog.h"

#include <chrono>
#include <utility>
#include <vector>

#include "obs/labels.h"
#include "util/logging.h"

namespace prague::obs {

namespace {

int64_t MonotonicNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void WatchdogHeartbeat::Beat() {
  last_beat_us_.store(owner_->NowUs(), std::memory_order_relaxed);
}

WatchdogHeartbeat::WatchdogHeartbeat(Watchdog* owner, std::string label,
                                     std::function<void()> wake)
    : owner_(owner), label_(std::move(label)), wake_(std::move(wake)) {
  last_beat_us_.store(owner_->NowUs(), std::memory_order_relaxed);
}

Watchdog::Watchdog(WatchdogOptions options) : options_(std::move(options)) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  stalls_total_ = reg.GetCounter("prague_watchdog_stalls_total");
  ticks_total_ = reg.GetCounter("prague_watchdog_ticks_total");
  active_runs_ = reg.GetGauge("prague_watchdog_active_runs");
  loop_lag_ = reg.GetLabeledGauge("prague_server_event_loop_lag_us", "loop");
}

Watchdog::~Watchdog() { Stop(); }

int64_t Watchdog::NowUs() const {
  return options_.now_us ? options_.now_us() : MonotonicNowUs();
}

WatchdogHeartbeat* Watchdog::RegisterHeartbeat(std::string label,
                                               std::function<void()> wake) {
  std::lock_guard<std::mutex> lock(mu_);
  heartbeats_.push_back(std::unique_ptr<WatchdogHeartbeat>(
      new WatchdogHeartbeat(this, std::move(label), std::move(wake))));
  return heartbeats_.back().get();
}

void Watchdog::UnregisterHeartbeat(WatchdogHeartbeat* heartbeat) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = heartbeats_.begin(); it != heartbeats_.end(); ++it) {
    if (it->get() == heartbeat) {
      heartbeats_.erase(it);
      return;
    }
  }
}

uint64_t Watchdog::OnRunStarted(std::string_view tenant, int64_t budget_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t token = next_token_++;
  runs_.emplace(token,
                RunWatch{std::string(tenant), NowUs(), budget_ms, false});
  active_runs_->Set(static_cast<int64_t>(runs_.size()));
  return token;
}

void Watchdog::OnRunFinished(uint64_t token) {
  std::lock_guard<std::mutex> lock(mu_);
  runs_.erase(token);
  active_runs_->Set(static_cast<int64_t>(runs_.size()));
}

size_t Watchdog::active_runs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return runs_.size();
}

void Watchdog::Tick() {
  const int64_t now = NowUs();
  ticks_total_->Increment();

  // Wake functions run outside mu_ — a wake that synchronously beats (or a
  // loop draining its eventfd and calling back into the watchdog) must not
  // deadlock against the registry lock. Copied, not referenced, so a
  // concurrent UnregisterHeartbeat cannot free them mid-invoke.
  std::vector<std::function<void()>> wakes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& hb : heartbeats_) {
      const int64_t beat = hb->last_beat_us_.load(std::memory_order_relaxed);
      const int64_t lag = now > beat ? now - beat : 0;
      hb->last_lag_us_.store(lag, std::memory_order_relaxed);
      loop_lag_->WithLabel(hb->label())->Set(lag);
      if (lag > options_.heartbeat_stall_us) {
        if (!hb->stalled_) {
          hb->stalled_ = true;
          stalls_total_->Increment();
          PRAGUE_SLOG_EVERY(Warning, 2.0, 8)
                  .Field("kind", "event-loop")
                  .Field("loop", hb->label())
                  .Field("lag_ms", static_cast<double>(lag) / 1000.0)
              << "watchdog: thread stopped beating";
        }
      } else {
        hb->stalled_ = false;
      }
      if (hb->wake_) wakes.push_back(hb->wake_);
    }

    for (auto& [token, watch] : runs_) {
      if (watch.flagged || watch.budget_ms <= 0) continue;
      int64_t limit_us = static_cast<int64_t>(
          static_cast<double>(watch.budget_ms) * 1000.0 *
          options_.stall_budget_multiple);
      if (limit_us < options_.min_run_stall_us) {
        limit_us = options_.min_run_stall_us;
      }
      const int64_t elapsed = now - watch.started_us;
      if (elapsed <= limit_us) continue;
      watch.flagged = true;
      stalls_total_->Increment();
      PRAGUE_SLOG_EVERY(Warning, 2.0, 8)
              .Field("kind", "long-run")
              .Field("tenant", watch.tenant)
              .Field("budget_ms", watch.budget_ms)
              .Field("elapsed_ms", static_cast<double>(elapsed) / 1000.0)
          << "watchdog: run exceeded its deadline budget";
      if (trace_ring_ != nullptr) {
        RunTrace trace;
        trace.deadline_phase = "watchdog-stall";
        trace.truncated = true;
        trace.srt_seconds = static_cast<double>(elapsed) / 1e6;
        trace_ring_->Add(std::move(trace));
      }
    }
  }
  for (auto& wake : wakes) wake();
}

void Watchdog::Start() {
  std::lock_guard<std::mutex> lock(thread_mu_);
  if (thread_.joinable()) return;
  stop_ = false;
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(thread_mu_);
    while (!stop_) {
      cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms));
      if (stop_) break;
      lock.unlock();
      Tick();
      lock.lock();
    }
  });
}

void Watchdog::Stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    if (!thread_.joinable()) return;
    stop_ = true;
    cv_.notify_all();
    to_join = std::move(thread_);
  }
  to_join.join();
}

}  // namespace prague::obs
