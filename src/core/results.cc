#include "core/results.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <span>
#include <unordered_set>

#include "graph/verifier.h"
#include "graph/vf2.h"

namespace prague {

const char* RunPhaseName(RunPhase phase) {
  switch (phase) {
    case RunPhase::kNone:
      return "none";
    case RunPhase::kExactVerification:
      return "exact-verification";
    case RunPhase::kSimilarCandidates:
      return "similar-candidates";
    case RunPhase::kSimilarGeneration:
      return "similar-generation";
  }
  return "unknown";
}

std::vector<GraphId> ExactVerification(const Graph& q, const IdSet& rq,
                                       const GraphDatabase& db,
                                       ThreadPool* pool,
                                       const Deadline& deadline,
                                       VerificationOutcome* outcome) {
  std::span<const GraphId> ids = rq.span();
  const bool bounded = deadline.CanExpire();
  VerificationOutcome local;
  std::vector<GraphId> out;
  if (pool == nullptr || pool->size() <= 1) {
    for (GraphId gid : ids) {
      if (bounded && deadline.Expired()) {
        local.truncated = true;
        break;
      }
      bool cut = false;
      bool found = IsSubgraphIsomorphic(q, db.graph(gid), deadline, &cut,
                                        &local.nodes_expanded);
      if (cut) {
        local.truncated = true;  // verdict unknown: stop before recording it
        break;
      }
      ++local.checked;
      if (found) out.push_back(gid);
    }
    if (outcome != nullptr) *outcome = local;
    return out;
  }
  std::vector<char> hit(ids.size(), 0);
  // decided[i] == 0 marks candidates the deadline left unresolved; the
  // output stops at the first such index so parallel truncation yields the
  // same prefix a sequential scan would.
  std::vector<char> decided(ids.size(), 1);
  std::atomic<bool> expired{false};
  std::atomic<size_t> nodes{0};
  pool->ParallelFor(ids.size(), /*min_chunk=*/16,
                    [&](size_t begin, size_t end) {
                      size_t local_nodes = 0;
                      for (size_t i = begin; i < end; ++i) {
                        if (bounded && (expired.load(std::memory_order_relaxed) ||
                                        deadline.Expired())) {
                          expired.store(true, std::memory_order_relaxed);
                          for (size_t j = i; j < end; ++j) decided[j] = 0;
                          break;
                        }
                        bool cut = false;
                        hit[i] = IsSubgraphIsomorphic(q, db.graph(ids[i]),
                                                      deadline, &cut,
                                                      &local_nodes);
                        if (cut) {
                          expired.store(true, std::memory_order_relaxed);
                          for (size_t j = i; j < end; ++j) decided[j] = 0;
                          break;
                        }
                      }
                      nodes.fetch_add(local_nodes,
                                      std::memory_order_relaxed);
                    });
  local.nodes_expanded = nodes.load();
  for (size_t i = 0; i < ids.size(); ++i) {
    if (!decided[i]) {
      local.truncated = true;
      break;
    }
    ++local.checked;
    if (hit[i]) out.push_back(ids[i]);
  }
  if (outcome != nullptr) *outcome = local;
  return out;
}

namespace {

// Distinct (by canonical code) level-i query subgraphs, pulled from the
// SPIG set — the union of level-i vertices across SPIGs is exactly the set
// of connected i-edge subgraphs of q.
std::vector<const Graph*> DistinctLevelFragments(const SpigSet& spigs,
                                                 int level) {
  std::vector<const Graph*> out;
  std::unordered_set<CanonicalCode> seen;
  spigs.ForEachVertexAtLevel(level, [&](const Spig&, const SpigVertex& v) {
    if (seen.insert(v.code).second) out.push_back(&v.fragment);
  });
  return out;
}

// SimVerify for one data graph at one level: mccs(g, q) ≥ level?
// When the verifier's deadline cuts a search the verdict is unknown;
// we stop trying further fragments (the caller detects the cut via the
// deadline and treats the candidate as undecided, not rejected).
bool SimVerify(const std::vector<const Graph*>& level_fragments,
               const Graph& g, SimilarGenStats* stats,
               Verifier* verifier) {
  for (const Graph* fragment : level_fragments) {
    size_t before_calls = verifier->stats().vf2_calls;
    size_t before_nodes = verifier->stats().nodes_expanded;
    size_t before_cuts = verifier->stats().deadline_hits;
    bool hit = verifier->Matches(*fragment, g);
    if (stats != nullptr) {
      stats->vf2_calls += verifier->stats().vf2_calls - before_calls;
      stats->nodes_expanded +=
          verifier->stats().nodes_expanded - before_nodes;
    }
    if (hit) return true;
    if (verifier->stats().deadline_hits != before_cuts) return false;
  }
  return false;
}

}  // namespace

std::vector<SimilarMatch> SimilarResultsGen(
    const Graph& q, const SpigSet& spigs, const SimilarCandidates& cands,
    int sigma, const GraphDatabase& db, const IdSet* exact_rq,
    SimilarGenStats* stats, size_t top_k, ThreadPool* pool,
    bool filtering_verifier, const Deadline& deadline, bool* truncated,
    SimilarGenCut* cut_pos) {
  std::unique_ptr<Verifier> verifier =
      MakeVerifier(filtering_verifier ? "filtering" : "plain");
  verifier->SetDeadline(deadline);
  const bool bounded = deadline.CanExpire();
  std::vector<SimilarMatch> results;
  IdSet seen;
  int qsize = static_cast<int>(q.EdgeCount());
  auto full = [&]() { return top_k != 0 && results.size() >= top_k; };
  auto cut = [&](int at_distance, bool in_ver) {
    if (truncated != nullptr) *truncated = true;
    if (cut_pos != nullptr) *cut_pos = SimilarGenCut{at_distance, in_ver};
    return results;
  };

  if (exact_rq != nullptr && !exact_rq->empty()) {
    VerificationOutcome exact_outcome;
    std::vector<GraphId> exact_hits =
        ExactVerification(q, *exact_rq, db, pool, deadline, &exact_outcome);
    if (stats != nullptr) {
      stats->nodes_expanded += exact_outcome.nodes_expanded;
    }
    for (GraphId gid : exact_hits) {
      if (full()) return results;
      results.push_back(SimilarMatch{gid, 0, true});
      seen.Insert(gid);
      if (stats != nullptr) ++stats->verified;
    }
    if (exact_outcome.truncated) return cut(0, true);
  }

  int lowest = std::max(1, qsize - sigma);
  for (int level = qsize - 1; level >= lowest && !full(); --level) {
    int distance = qsize - level;
    if (bounded && deadline.Expired()) return cut(distance, false);
    auto free_it = cands.free.find(level);
    if (free_it != cands.free.end()) {
      for (GraphId gid : free_it->second.Subtract(seen)) {
        if (full()) return results;
        results.push_back(SimilarMatch{gid, distance, false});
        seen.Insert(gid);
        if (stats != nullptr) ++stats->verification_free;
      }
    }
    auto ver_it = cands.ver.find(level);
    if (ver_it != cands.ver.end()) {
      IdSet pending = ver_it->second.Subtract(seen);
      if (!pending.empty()) {
        std::vector<const Graph*> fragments =
            DistinctLevelFragments(spigs, level);
        std::span<const GraphId> ids = pending.span();
        if (pool != nullptr && pool->size() > 1 && ids.size() > 16) {
          // Parallel MCCS checks; appended in id order afterwards so the
          // output matches the sequential path exactly. decided[i] == 0
          // marks deadline-unresolved candidates; the append loop stops at
          // the first one, keeping truncation prefix-consistent.
          std::vector<char> verdict(ids.size(), 0);
          std::vector<char> decided(ids.size(), 1);
          std::atomic<bool> expired{false};
          std::atomic<size_t> vf2_calls{0};
          std::atomic<size_t> nodes{0};
          pool->ParallelFor(
              ids.size(), /*min_chunk=*/8, [&](size_t begin, size_t end) {
                // Verifier caches are not shared across threads; each
                // chunk gets its own (fragment summaries are recomputed
                // once per chunk, which is cheap).
                std::unique_ptr<Verifier> local_verifier = MakeVerifier(
                    filtering_verifier ? "filtering" : "plain");
                local_verifier->SetDeadline(deadline);
                SimilarGenStats local;
                for (size_t i = begin; i < end; ++i) {
                  if (bounded &&
                      (expired.load(std::memory_order_relaxed) ||
                       deadline.Expired())) {
                    expired.store(true, std::memory_order_relaxed);
                    for (size_t j = i; j < end; ++j) decided[j] = 0;
                    break;
                  }
                  size_t cuts = local_verifier->stats().deadline_hits;
                  verdict[i] = SimVerify(fragments, db.graph(ids[i]),
                                         &local, local_verifier.get());
                  if (local_verifier->stats().deadline_hits != cuts) {
                    expired.store(true, std::memory_order_relaxed);
                    for (size_t j = i; j < end; ++j) decided[j] = 0;
                    break;
                  }
                }
                vf2_calls += local.vf2_calls;
                nodes += local.nodes_expanded;
              });
          if (stats != nullptr) {
            stats->vf2_calls += vf2_calls.load();
            stats->nodes_expanded += nodes.load();
          }
          for (size_t i = 0; i < ids.size(); ++i) {
            if (full()) return results;
            if (!decided[i]) return cut(distance, true);
            if (verdict[i]) {
              results.push_back(SimilarMatch{ids[i], distance, true});
              seen.Insert(ids[i]);
              if (stats != nullptr) ++stats->verified;
            } else if (stats != nullptr) {
              ++stats->rejected;
            }
          }
        } else {
          for (GraphId gid : ids) {
            if (full()) return results;
            if (bounded && deadline.Expired()) return cut(distance, true);
            if (SimVerify(fragments, db.graph(gid), stats,
                          verifier.get())) {
              results.push_back(SimilarMatch{gid, distance, true});
              seen.Insert(gid);
              if (stats != nullptr) ++stats->verified;
            } else if (bounded && deadline.Expired()) {
              // Verdict unknown — the deadline cut the search mid-check.
              return cut(distance, true);
            } else if (stats != nullptr) {
              ++stats->rejected;
            }
          }
        }
      }
    }
  }
  return results;
}

}  // namespace prague
