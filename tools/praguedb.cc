// praguedb — command-line data-preparation and batch-query tool.
//
//   praguedb gen   (aids|synth) <count> <out.db> [seed] [--bonds]
//   praguedb mine  <db> [alpha] [max_edges]
//   praguedb index <db> <out.idx> [alpha] [beta]
//   praguedb info  <index.idx>
//   praguedb query <db> <index.idx> <queries.db> [sigma] [threads]
//                  [--timeout-ms=N]
//   praguedb sample <db> <count> <edges> <out.db> [seed]
//   praguedb append <db> <index.idx> <new.db> <alpha> [out.db out.idx]
//   praguedb stats <db>
//   praguedb run   <db> <index.idx> "<pattern>" [sigma] [--timeout-ms=N]
//                  — e.g. "(a:C)-(b:C), (b)-(c:S)" (see
//                  query/pattern_parser.h)
//   praguedb serve <db> <index.idx> [--port=N] [--timeout-ms=M]
//                  [--threads=T] [--slow-query-ms=S]
//                  — session server speaking the wire protocol of
//                  server/wire.h; one connection = one pinned session.
//                  --slow-query-ms logs the full RunTrace of any RUN
//                  taking at least S ms (see docs/OBSERVABILITY.md)
//   praguedb serve --data-dir=<dir> [<db> <index.idx>] [--fsync=0|1]
//                  — durable server (storage/storage_engine.h): an
//                  existing data dir is opened in O(1) (mmap the
//                  checkpointed segment, replay the WAL tail); a fresh
//                  one is bootstrapped from <db> <index.idx>. APPEND
//                  batches are WAL-fsync'd before they are acknowledged
//                  (--fsync=0 trades that for latency).
//   praguedb compact <dir>
//                  — checkpoint a data dir offline: fold the WAL tail
//                  into a fresh segment and truncate the log, so the
//                  next open replays nothing.
//   praguedb shell --connect <host:port>
//                  — interactive (or scripted via piped stdin) client
//                  for a running server; `help` lists line commands
//
// `--timeout-ms=N` bounds each Run() to N milliseconds; on expiry the
// engine returns the prefix of results decided in time and the row/output
// is marked truncated with the phase the deadline landed in. For `serve`
// it is the default per-session run budget (clients can override it per
// OPEN).
//
// Exit codes: 0 success, 1 runtime failure, 2 usage error.
//
// Databases and query files use the gSpan text format (`t # id / v / e`
// lines); indexes use the PRAGUE_INDEX format of index_io (v2 carries the
// snapshot version). The `query` subcommand replays each query graph
// through its own PragueSession edge-at-a-time (exactly like the GUI) and
// prints one summary row per query; its `threads` argument runs that many
// whole sessions concurrently through a SessionManager. The `append`
// subcommand publishes a copy-on-write successor snapshot while a pinned
// session keeps reading the old version.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/prague_session.h"
#include "core/session_manager.h"
#include "datasets/aids_generator.h"
#include "datasets/query_workload.h"
#include "datasets/synthetic_generator.h"
#include "graph/graph_io.h"
#include "graph/statistics.h"
#include "index/index_io.h"
#include "index/index_maintenance.h"
#include "core/explain.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/watchdog.h"
#include "query/pattern_parser.h"
#include "server/prague_client.h"
#include "server/prague_server.h"
#include "storage/storage_engine.h"
#include "util/bytes.h"
#include "util/logging.h"
#include "util/stopwatch.h"

using namespace prague;

namespace {

// Usage errors (2) are distinguishable from runtime failures (1) so
// scripts can tell a typo from a broken input file.
constexpr int kExitOk = 0;
constexpr int kExitRuntime = 1;
constexpr int kExitUsage = 2;

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  praguedb gen   (aids|synth) <count> <out.db> [seed] [--bonds]\n"
      "  praguedb mine  <db> [alpha=0.1] [max_edges=8]\n"
      "  praguedb index <db> <out.idx> [alpha=0.1] [beta=4]\n"
      "  praguedb info  <index.idx>\n"
      "  praguedb query <db> <index.idx> <queries.db> [sigma=3] "
      "[threads=1] [--timeout-ms=N]  (threads = concurrent sessions)\n"
      "  praguedb sample <db> <count> <edges> <out.db> [seed]\n"
      "  praguedb append <db> <index.idx> <new.db> <alpha> "
      "[out.db out.idx]\n"
      "  praguedb stats <db>\n"
      "  praguedb run   <db> <index.idx> \"<pattern>\" [sigma] [--explain] "
      "[--timeout-ms=N]\n"
      "  praguedb serve <db> <index.idx> [--port=N] [--timeout-ms=M] "
      "[--threads=T] [--event-loop-threads=E] [--slow-query-ms=S] "
      "[--shards=N] [--tenant-rate=R] [--max-runs-per-conn=N] "
      "[--max-queued-bytes=B] [--http-port=H] [--log-format=text|json] "
      "[--log-level=debug|info|warning|error]\n"
      "        (admission control: R runs/sec, N concurrent runs, B pending\n"
      "         bytes per tenant; over-quota requests get BUSY, not queued)\n"
      "        (--http-port exposes /metrics /healthz /readyz /statusz\n"
      "         /tracez for Prometheus and probes; default off)\n"
      "  praguedb serve --data-dir=<dir> [<db> <index.idx>] [--fsync=0|1] "
      "[--append-alpha=A] [serve flags]\n"
      "        (durable server: opens an existing data dir — or bootstraps\n"
      "         one from <db> <index.idx> — and WAL-logs APPEND batches)\n"
      "  praguedb compact <dir>\n"
      "  praguedb shell --connect <host:port>\n"
      "\n"
      "exit codes: 0 ok, 1 runtime failure, 2 usage error\n");
  return kExitUsage;
}

// Extracts a `--<name>=N` flag from argv (anywhere after the subcommand),
// compacting the array so positional parsing is unaffected. Returns
// \p absent when the flag is missing.
int64_t ExtractInt64Flag(int* argc, char** argv, const char* flag,
                         int64_t absent) {
  const size_t flag_len = std::strlen(flag);
  int64_t value = absent;
  int w = 0;
  for (int r = 0; r < *argc; ++r) {
    if (std::strncmp(argv[r], flag, flag_len) == 0) {
      value = std::strtoll(argv[r] + flag_len, nullptr, 10);
    } else {
      argv[w++] = argv[r];
    }
  }
  *argc = w;
  return value;
}

// `--timeout-ms=N`; 0 (unbounded) when absent.
int64_t ExtractTimeoutMs(int* argc, char** argv) {
  return ExtractInt64Flag(argc, argv, "--timeout-ms=", 0);
}

// ExtractInt64Flag for fractional values (e.g. --tenant-rate=0.5).
double ExtractDoubleFlag(int* argc, char** argv, const char* flag,
                         double absent) {
  const size_t flag_len = std::strlen(flag);
  double value = absent;
  int w = 0;
  for (int r = 0; r < *argc; ++r) {
    if (std::strncmp(argv[r], flag, flag_len) == 0) {
      value = std::strtod(argv[r] + flag_len, nullptr);
    } else {
      argv[w++] = argv[r];
    }
  }
  *argc = w;
  return value;
}

// ExtractInt64Flag for string values (e.g. --data-dir=/var/prague).
std::string ExtractStringFlag(int* argc, char** argv, const char* flag) {
  const size_t flag_len = std::strlen(flag);
  std::string value;
  int w = 0;
  for (int r = 0; r < *argc; ++r) {
    if (std::strncmp(argv[r], flag, flag_len) == 0) {
      value = argv[r] + flag_len;
    } else {
      argv[w++] = argv[r];
    }
  }
  *argc = w;
  return value;
}

int Fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return kExitRuntime;
}

int CmdGen(int argc, char** argv) {
  if (argc < 4) return Usage();
  std::string kind = argv[1];
  size_t count = std::strtoul(argv[2], nullptr, 10);
  std::string out = argv[3];
  uint64_t seed = argc > 4 && argv[4][0] != '-'
                      ? std::strtoull(argv[4], nullptr, 10)
                      : 42;
  bool bonds = false;
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "--bonds") == 0) bonds = true;
  }
  GraphDatabase db;
  if (kind == "aids") {
    AidsGeneratorConfig config;
    config.graph_count = count;
    config.seed = seed;
    config.bond_labels = bonds;
    db = GenerateAidsLikeDatabase(config);
  } else if (kind == "synth") {
    SyntheticGeneratorConfig config;
    config.graph_count = count;
    config.seed = seed;
    db = GenerateSyntheticDatabase(config);
  } else {
    return Usage();
  }
  if (Status st = WriteDatabaseToFile(db, out); !st.ok()) return Fail(st);
  std::printf("wrote %zu graphs (avg %.1f nodes / %.1f edges) to %s\n",
              db.size(), db.AverageNodeCount(), db.AverageEdgeCount(),
              out.c_str());
  return 0;
}

int CmdMine(int argc, char** argv) {
  if (argc < 2) return Usage();
  Result<GraphDatabase> db = ReadDatabaseFromFile(argv[1]);
  if (!db.ok()) return Fail(db.status());
  MiningConfig config;
  if (argc > 2) config.min_support_ratio = std::strtod(argv[2], nullptr);
  if (argc > 3) config.max_fragment_edges = std::strtoul(argv[3], nullptr, 10);
  Stopwatch timer;
  Result<MiningResult> mined = MineFragments(*db, config);
  if (!mined.ok()) return Fail(mined.status());
  std::printf(
      "mined %s in %.2fs (alpha=%.3f, min support %zu):\n"
      "  frequent fragments: %zu\n"
      "  DIFs:               %zu\n"
      "  duplicate growth paths pruned: %zu\n",
      argv[1], timer.ElapsedSeconds(), config.min_support_ratio,
      mined->min_support, mined->frequent.size(), mined->difs.size(),
      mined->stats.pruned_non_minimal);
  return 0;
}

int CmdIndex(int argc, char** argv) {
  if (argc < 3) return Usage();
  Result<GraphDatabase> db = ReadDatabaseFromFile(argv[1]);
  if (!db.ok()) return Fail(db.status());
  MiningConfig mining;
  A2fConfig a2f;
  if (argc > 3) mining.min_support_ratio = std::strtod(argv[3], nullptr);
  if (argc > 4) a2f.beta = std::strtoul(argv[4], nullptr, 10);
  Stopwatch timer;
  Result<ActionAwareIndexes> indexes =
      BuildActionAwareIndexes(*db, mining, a2f);
  if (!indexes.ok()) return Fail(indexes.status());
  if (Status st = IndexSerializer::SaveToFile(*indexes, argv[2]); !st.ok()) {
    return Fail(st);
  }
  std::printf(
      "built indexes in %.2fs: A2F %zu fragments, A2I %zu DIFs, %s; "
      "saved to %s\n",
      timer.ElapsedSeconds(), indexes->a2f.VertexCount(),
      indexes->a2i.EntryCount(),
      HumanBytes(indexes->StorageBytes()).c_str(), argv[2]);
  return 0;
}

int CmdInfo(int argc, char** argv) {
  if (argc < 2) return Usage();
  Result<VersionedIndexes> loaded =
      IndexSerializer::LoadVersionedFromFile(argv[1]);
  if (!loaded.ok()) return Fail(loaded.status());
  const ActionAwareIndexes& indexes = loaded->indexes;
  const A2FIndex& a2f = indexes.a2f;
  std::printf(
      "%s:\n"
      "  snapshot ver: %llu\n"
      "  min support:  %zu\n"
      "  A2F vertices: %zu (MF %zu / DF %zu, beta=%zu, %zu clusters)\n"
      "  A2I entries:  %zu\n"
      "  storage:      %s (delId-compressed)\n",
      argv[1], static_cast<unsigned long long>(loaded->version),
      indexes.min_support, a2f.VertexCount(), a2f.MfVertexCount(),
      a2f.DfVertexCount(), a2f.beta(), a2f.clusters().size(),
      indexes.a2i.EntryCount(),
      HumanBytes(indexes.StorageBytes()).c_str());
  return 0;
}

// Replays one query graph through `session` and formats its summary row
// (or an error message) into *row / *err.
void RunOneQuery(const std::shared_ptr<ManagedSession>& session,
                 const GraphDatabase& queries, GraphId qid, std::string* row,
                 std::string* err) {
  const Graph& raw = queries.graph(qid);
  session->With([&](PragueSession& s) {
    std::vector<NodeId> node_map(raw.NodeCount(), kInvalidNode);
    for (EdgeId e : DefaultFormulationSequence(raw)) {
      const Edge& edge = raw.GetEdge(e);
      for (NodeId n : {edge.u, edge.v}) {
        if (node_map[n] != kInvalidNode) continue;
        Result<std::string> name = queries.labels().NameOf(raw.NodeLabel(n));
        if (!name.ok()) {
          *err = name.status().ToString();
          return;
        }
        Result<NodeId> mapped = s.AddNodeByName(name.value());
        if (!mapped.ok()) {
          *err = mapped.status().ToString();
          return;
        }
        node_map[n] = *mapped;
      }
      Result<StepReport> step =
          s.AddEdge(node_map[edge.u], node_map[edge.v], edge.label);
      if (!step.ok()) {
        *err = step.status().ToString();
        return;
      }
    }
    RunStats stats;
    Result<QueryResults> results = s.Run(&stats);
    if (!results.ok()) {
      *err = results.status().ToString();
      return;
    }
    char note[48];
    if (results->truncated) {
      std::snprintf(note, sizeof(note), "truncated(%s)",
                    RunPhaseName(stats.deadline_phase));
    } else {
      std::snprintf(note, sizeof(note), "-");
    }
    char buf[192];
    if (results->similarity) {
      int best = results->similar.empty() ? -1
                                          : results->similar.front().distance;
      std::snprintf(buf, sizeof(buf), "%-6u %-4zu %-10s %-8zu %-8d %-10.3f %s",
                    qid, raw.EdgeCount(), "similar", results->similar.size(),
                    best, stats.srt_seconds * 1000, note);
    } else {
      std::snprintf(buf, sizeof(buf), "%-6u %-4zu %-10s %-8zu %-8d %-10.3f %s",
                    qid, raw.EdgeCount(), "exact", results->exact.size(), 0,
                    stats.srt_seconds * 1000, note);
    }
    *row = buf;
  });
}

int CmdQuery(int argc, char** argv) {
  int64_t timeout_ms = ExtractTimeoutMs(&argc, argv);
  if (argc < 4) return Usage();
  Result<GraphDatabase> db = ReadDatabaseFromFile(argv[1]);
  if (!db.ok()) return Fail(db.status());
  Result<VersionedIndexes> loaded =
      IndexSerializer::LoadVersionedFromFile(argv[2]);
  if (!loaded.ok()) return Fail(loaded.status());
  Result<GraphDatabase> queries = ReadDatabaseFromFile(argv[3]);
  if (!queries.ok()) return Fail(queries.status());
  PragueConfig config;
  config.run_deadline_ms = timeout_ms;
  if (argc > 4) config.sigma = std::atoi(argv[4]);
  size_t threads = 1;
  if (argc > 5) threads = std::strtoul(argv[5], nullptr, 10);
  if (threads == 0) threads = 1;

  // `threads` runs that many *whole sessions* concurrently through the
  // manager — the paper's multi-user scenario — rather than splitting one
  // session's verification across threads.
  SessionManager manager(
      DatabaseSnapshot::Make(std::move(db.value()),
                             std::move(loaded.value().indexes),
                             loaded.value().version),
      config);

  const size_t n = queries->size();
  std::vector<std::string> rows(n);
  std::vector<std::string> errs(n);
  std::atomic<size_t> next_query{0};
  auto worker = [&] {
    for (;;) {
      size_t qid = next_query.fetch_add(1);
      if (qid >= n) return;
      RunOneQuery(manager.Open(), *queries, static_cast<GraphId>(qid),
                  &rows[qid], &errs[qid]);
    }
  };
  std::vector<std::thread> pool;
  for (size_t t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();

  // Query label names must map onto database label ids.
  std::printf("%-6s %-4s %-10s %-8s %-8s %-10s %s\n", "query", "|q|", "mode",
              "matches", "best_d", "SRT(ms)", "note");
  for (size_t qid = 0; qid < n; ++qid) {
    if (!errs[qid].empty()) {
      std::fprintf(stderr, "query %zu: %s\n", qid, errs[qid].c_str());
    } else {
      std::printf("%s\n", rows[qid].c_str());
    }
  }
  return 0;
}

// Samples query-sized connected subgraphs from a database — the input
// `praguedb query` expects.
int CmdSample(int argc, char** argv) {
  if (argc < 5) return Usage();
  Result<GraphDatabase> db = ReadDatabaseFromFile(argv[1]);
  if (!db.ok()) return Fail(db.status());
  size_t count = std::strtoul(argv[2], nullptr, 10);
  size_t edges = std::strtoul(argv[3], nullptr, 10);
  uint64_t seed = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 1;
  WorkloadGenerator workload(&db.value(), seed);
  GraphDatabase out;
  // Share the source dictionary so label names round-trip.
  for (const std::string& name : db->labels().names()) {
    out.mutable_labels()->Intern(name);
  }
  for (size_t i = 0; i < count; ++i) {
    Result<VisualQuerySpec> spec =
        workload.ContainmentQuery(edges, "q" + std::to_string(i));
    if (!spec.ok()) return Fail(spec.status());
    out.Add(spec->graph);
  }
  if (Status st = WriteDatabaseToFile(out, argv[4]); !st.ok()) {
    return Fail(st);
  }
  std::printf("wrote %zu %zu-edge query graphs to %s\n", count, edges,
              argv[4]);
  return 0;
}

// Copy-on-write append: builds and publishes a successor snapshot through
// a SessionManager, reports drift with from→to version stamps, and
// demonstrates publish-while-querying — a session pinned before the
// append keeps seeing the old version afterwards.
int CmdAppend(int argc, char** argv) {
  if (argc < 5) return Usage();
  Result<GraphDatabase> db = ReadDatabaseFromFile(argv[1]);
  if (!db.ok()) return Fail(db.status());
  Result<VersionedIndexes> loaded =
      IndexSerializer::LoadVersionedFromFile(argv[2]);
  if (!loaded.ok()) return Fail(loaded.status());
  Result<GraphDatabase> incoming = ReadDatabaseFromFile(argv[3]);
  if (!incoming.ok()) return Fail(incoming.status());
  double alpha = std::strtod(argv[4], nullptr);

  SessionManager manager(
      DatabaseSnapshot::Make(std::move(db.value()),
                             std::move(loaded.value().indexes),
                             loaded.value().version));

  // Pin a session *before* the append: it must keep seeing the old
  // version while the successor publishes under it.
  std::shared_ptr<ManagedSession> pinned = manager.Open();
  size_t pinned_size = pinned->With(
      [](PragueSession& s) { return s.snapshot()->db().size(); });

  std::vector<Graph> extra;
  for (GraphId gid = 0; gid < incoming->size(); ++gid) {
    extra.push_back(incoming->graph(gid));
  }
  Stopwatch timer;
  // Incoming node labels are re-interned against the successor's
  // dictionary inside the COW append.
  Result<MaintenanceReport> report =
      manager.Append(std::move(extra), alpha, &incoming->labels());
  if (!report.ok()) return Fail(report.status());
  std::printf(
      "appended %zu graphs in %.2fs (probes %zu, pruned %zu), version "
      "%llu -> %llu\n"
      "new min support %zu; drift: %zu frequent below threshold, %zu DIFs "
      "above\n%s\n",
      report->graphs_added, timer.ElapsedSeconds(), report->probes,
      report->pruned_probes,
      static_cast<unsigned long long>(report->from_version),
      static_cast<unsigned long long>(report->to_version),
      report->new_min_support, report->frequent_below_threshold,
      report->difs_above_threshold,
      report->remine_recommended
          ? "recommendation: schedule a full re-mine"
          : "indexes remain classification-exact");

  SnapshotPtr current = manager.current();
  std::printf(
      "publish-while-querying: session pinned at version %llu still sees "
      "|D| = %zu; new sessions see version %llu with |D| = %zu\n",
      static_cast<unsigned long long>(pinned->version()), pinned_size,
      static_cast<unsigned long long>(current->version()),
      current->db().size());

  if (argc > 6) {
    if (Status st = WriteDatabaseToFile(current->db(), argv[5]); !st.ok()) {
      return Fail(st);
    }
    if (Status st = IndexSerializer::SaveToFile(current->indexes(), argv[6],
                                                current->version());
        !st.ok()) {
      return Fail(st);
    }
    std::printf("wrote %s and %s (version %llu)\n", argv[5], argv[6],
                static_cast<unsigned long long>(current->version()));
  }
  return 0;
}

int CmdStats(int argc, char** argv) {
  if (argc < 2) return Usage();
  Result<GraphDatabase> db = ReadDatabaseFromFile(argv[1]);
  if (!db.ok()) return Fail(db.status());
  DatabaseStatistics stats = ComputeStatistics(*db);
  std::printf("%s", stats.ToString(db->labels()).c_str());
  return 0;
}

// Executes one textual pattern through a PragueSession, edge by edge in
// the written order — exactly as if drawn in the GUI.
int CmdRun(int argc, char** argv) {
  int64_t timeout_ms = ExtractTimeoutMs(&argc, argv);
  if (argc < 4) return Usage();
  Result<GraphDatabase> db = ReadDatabaseFromFile(argv[1]);
  if (!db.ok()) return Fail(db.status());
  Result<ActionAwareIndexes> indexes = IndexSerializer::LoadFromFile(argv[2]);
  if (!indexes.ok()) return Fail(indexes.status());
  Result<ParsedPattern> pattern =
      ParsePatternStrict(argv[3], db->labels());
  if (!pattern.ok()) return Fail(pattern.status());
  PragueConfig config;
  config.run_deadline_ms = timeout_ms;
  bool explain = false;
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "--explain") == 0) {
      explain = true;
    } else {
      config.sigma = std::atoi(argv[i]);
    }
  }

  PragueSession session(
      DatabaseSnapshot::Borrow(&db.value(), &indexes.value()), config);
  std::vector<NodeId> ids;
  for (NodeId n = 0; n < pattern->graph.NodeCount(); ++n) {
    ids.push_back(session.AddNode(pattern->graph.NodeLabel(n)));
  }
  for (EdgeId e : pattern->sequence) {
    const Edge& edge = pattern->graph.GetEdge(e);
    Result<StepReport> report =
        session.AddEdge(ids[edge.u], ids[edge.v], edge.label);
    if (!report.ok()) return Fail(report.status());
    std::printf("e%-2d |Rq|=%-8zu%s\n", report->edge,
                report->exact_candidates,
                report->similarity_mode ? "  (similarity mode)" : "");
  }
  RunStats stats;
  Result<QueryResults> results = session.Run(&stats);
  if (!results.ok()) return Fail(results.status());
  std::printf("SRT %.3f ms\n", stats.srt_seconds * 1000);
  if (results->truncated) {
    std::printf(
        "TRUNCATED: deadline hit during %s after %zu search nodes; results "
        "below are the prefix decided in time\n",
        RunPhaseName(stats.deadline_phase), stats.nodes_expanded);
  }
  if (!results->similarity) {
    std::printf("%zu exact matches%s:", results->exact.size(),
                results->truncated ? " (partial)" : "");
    size_t shown = 0;
    for (GraphId gid : results->exact) {
      if (++shown > 25) {
        std::printf(" ...");
        break;
      }
      std::printf(" g%u", gid);
    }
    std::printf("\n");
  } else {
    std::printf("%zu approximate matches%s (sigma=%d):\n",
                results->similar.size(),
                results->truncated ? " (partial)" : "", config.sigma);
    size_t shown = 0;
    for (const SimilarMatch& m : results->similar) {
      if (++shown > 25) {
        std::printf("  ...\n");
        break;
      }
      std::printf("  g%-8u distance=%d\n", m.gid, m.distance);
    }
    if (explain && !results->similar.empty()) {
      GraphId best = results->similar.front().gid;
      const Graph& q = session.query().CurrentGraph();
      Result<MatchExplanation> why = ExplainMatch(q, db->graph(best));
      if (why.ok()) {
        std::printf("why g%u matches:\n%s", best,
                    ExplanationToString(*why, q, db->labels()).c_str());
      }
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// serve / shell — the network service layer.

std::atomic<bool> g_serve_stop{false};

void HandleServeSignal(int) { g_serve_stop.store(true); }

int CmdServe(int argc, char** argv) {
  int64_t timeout_ms = ExtractTimeoutMs(&argc, argv);
  int64_t port = ExtractInt64Flag(&argc, argv, "--port=", 7474);
  int64_t threads = ExtractInt64Flag(&argc, argv, "--threads=", 0);
  int64_t event_loop_threads =
      ExtractInt64Flag(&argc, argv, "--event-loop-threads=", 0);
  int64_t slow_query_ms = ExtractInt64Flag(&argc, argv, "--slow-query-ms=", -1);
  // --shards=N partitions the snapshot so every RUN scatters its phases
  // across N graph-id shards; results stay identical to --shards=1.
  int64_t shards = ExtractInt64Flag(&argc, argv, "--shards=", 1);
  // Durable mode (storage/storage_engine.h).
  std::string data_dir = ExtractStringFlag(&argc, argv, "--data-dir=");
  int64_t fsync_wal = ExtractInt64Flag(&argc, argv, "--fsync=", 1);
  double append_alpha = ExtractDoubleFlag(&argc, argv, "--append-alpha=", 0.1);
  // Admission control (core/admission.h): all default off.
  double tenant_rate = ExtractDoubleFlag(&argc, argv, "--tenant-rate=", 0);
  int64_t max_runs_per_conn =
      ExtractInt64Flag(&argc, argv, "--max-runs-per-conn=", 0);
  int64_t max_queued_bytes =
      ExtractInt64Flag(&argc, argv, "--max-queued-bytes=", 0);
  // Observability plane (obs/http_exporter.h): off unless --http-port.
  int64_t http_port = ExtractInt64Flag(&argc, argv, "--http-port=", -1);
  std::string log_format = ExtractStringFlag(&argc, argv, "--log-format=");
  std::string log_level = ExtractStringFlag(&argc, argv, "--log-level=");
  if (!log_format.empty()) {
    LogFormat format;
    if (!ParseLogFormat(log_format, &format)) {
      std::fprintf(stderr, "serve: bad --log-format '%s' (text|json)\n",
                   log_format.c_str());
      return Usage();
    }
    SetLogFormat(format);
  }
  if (!log_level.empty()) {
    LogLevel level;
    if (!ParseLogLevel(log_level, &level)) {
      std::fprintf(stderr,
                   "serve: bad --log-level '%s' "
                   "(debug|info|warning|error)\n",
                   log_level.c_str());
      return Usage();
    }
    SetLogLevel(level);
  }
  // Every known flag has been extracted; anything dash-prefixed left over
  // is a typo. Reject it before touching the data files so the mistake
  // surfaces as a usage error, not a runtime one.
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] == '-') {
      std::fprintf(stderr, "serve: unknown flag '%s'\n", argv[i]);
      return Usage();
    }
  }

  storage::StorageOptions storage_options;
  storage_options.sync = fsync_wal != 0;
  std::shared_ptr<storage::StorageEngine> engine;
  SnapshotPtr snapshot;
  if (!data_dir.empty() && storage::StorageEngine::Exists(data_dir)) {
    // An existing data dir is self-contained: O(1) open (mmap the
    // checkpointed segment) + WAL-tail replay. Positional <db> <index.idx>
    // would be silently shadowed, so reject the combination outright.
    if (argc > 1) {
      std::fprintf(stderr,
                   "serve: %s is already bootstrapped; omit <db> <index.idx>\n",
                   data_dir.c_str());
      return Usage();
    }
    Stopwatch open_timer;
    Result<std::unique_ptr<storage::StorageEngine>> opened =
        storage::StorageEngine::Open(data_dir, storage_options);
    if (!opened.ok()) return Fail(opened.status());
    engine = std::move(opened.value());
    snapshot = engine->recovered().snapshot;
    const storage::StorageStats st = engine->Stats();
    std::printf(
        "praguedb: opened %s in %.1f ms (segment %llu bytes, %llu WAL "
        "records replayed%s)\n",
        data_dir.c_str(), open_timer.ElapsedSeconds() * 1000,
        static_cast<unsigned long long>(st.segment_bytes),
        static_cast<unsigned long long>(st.recovery_replayed_records),
        st.wal_tail_dropped ? ", torn tail dropped" : "");
  } else {
    if (argc < 3) return Usage();
    Result<GraphDatabase> db = ReadDatabaseFromFile(argv[1]);
    if (!db.ok()) return Fail(db.status());
    Result<VersionedIndexes> loaded =
        IndexSerializer::LoadVersionedFromFile(argv[2]);
    if (!loaded.ok()) return Fail(loaded.status());
    snapshot = DatabaseSnapshot::Make(std::move(db.value()),
                                      std::move(loaded.value().indexes),
                                      loaded.value().version);
    if (!data_dir.empty()) {
      Result<std::unique_ptr<storage::StorageEngine>> boot =
          storage::StorageEngine::Bootstrap(data_dir, *snapshot, append_alpha,
                                            storage_options);
      if (!boot.ok()) return Fail(boot.status());
      engine = std::move(boot.value());
      // Serve the snapshot the engine round-tripped through its own
      // segment, not the in-memory original — what recovery would load.
      snapshot = engine->recovered().snapshot;
      std::printf("praguedb: bootstrapped %s (segment %llu bytes)\n",
                  data_dir.c_str(),
                  static_cast<unsigned long long>(
                      engine->Stats().segment_bytes));
    }
  }

  PragueConfig default_config;
  default_config.shards = shards > 1 ? static_cast<size_t>(shards) : 1;
  SessionManager manager(snapshot, default_config);
  if (engine) manager.AttachStorage(engine);
  PragueServerOptions options;
  options.port = static_cast<uint16_t>(port);
  options.worker_threads = static_cast<size_t>(threads);
  options.event_loop_threads = static_cast<size_t>(event_loop_threads);
  // --timeout-ms is the default per-session run budget; clients may
  // override it per OPEN.
  options.default_run_deadline_ms = timeout_ms > 0 ? timeout_ms : -1;
  options.slow_query_ms = slow_query_ms;
  options.default_append_alpha = append_alpha;
  options.tenant_rate = tenant_rate > 0 ? tenant_rate : 0;
  options.max_runs_per_conn =
      max_runs_per_conn > 0 ? static_cast<size_t>(max_runs_per_conn) : 0;
  options.max_queued_bytes =
      max_queued_bytes > 0 ? static_cast<size_t>(max_queued_bytes) : 0;
  // The watchdog outlives the server (options.watchdog contract): it is
  // declared first so it is destroyed last, and explicitly stopped after
  // server.Stop() below.
  obs::Watchdog watchdog;
  watchdog.set_trace_ring(&manager.mutable_traces());
  options.watchdog = &watchdog;
  PragueServer server(&manager, options);
  if (Status st = server.Start(); !st.ok()) return Fail(st);
  watchdog.Start();

  obs::HttpExporter* exporter = nullptr;
  std::unique_ptr<obs::HttpExporter> exporter_holder;
  if (http_port >= 0) {
    const auto serve_started = std::chrono::steady_clock::now();
    obs::HttpExporterOptions http_options;
    http_options.port = static_cast<uint16_t>(http_port);
    obs::HttpExporterHooks hooks;
    hooks.ready = [&server, &manager] {
      return server.running() && manager.current() != nullptr;
    };
    hooks.statusz_json = [&manager, &server, serve_started] {
      const SessionManagerStats stats = manager.Stats();
      const auto uptime = std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::steady_clock::now() - serve_started);
      std::ostringstream out;
      out << "{\"snapshot_version\":" << stats.current_version
          << ",\"uptime_s\":" << uptime.count()
          << ",\"port\":" << server.port()
          << ",\"connections_accepted\":" << server.connections_accepted()
          << ",\"open_sessions\":" << stats.open_sessions
          << ",\"shards\":" << stats.shards
          << ",\"runs_served\":" << stats.runs_served
          << ",\"runs_shed\":" << stats.runs_shed
          << ",\"tenants\":" << stats.tenants
          << ",\"durable\":" << (stats.durable ? "true" : "false")
          << ",\"wal_bytes\":" << stats.wal_bytes
          << ",\"last_checkpoint_version\":" << stats.last_checkpoint_version
          << "}";
      return out.str();
    };
    hooks.traces = [&manager] { return manager.traces().Recent(); };
    exporter_holder =
        std::make_unique<obs::HttpExporter>(http_options, std::move(hooks));
    if (Status st = exporter_holder->Start(); !st.ok()) {
      server.Stop();
      watchdog.Stop();
      return Fail(st);
    }
    exporter = exporter_holder.get();
  }
  std::string budget = timeout_ms > 0 ? std::to_string(timeout_ms) + " ms"
                                      : "unbounded";
  std::string slow_log =
      slow_query_ms >= 0 ? std::to_string(slow_query_ms) + " ms" : "off";
  std::printf("praguedb: serving %zu graphs (snapshot version %llu) on port "
              "%u; default run budget %s; slow-query log %s; shards %zu; "
              "durability %s\n",
              manager.current()->db().size(),
              static_cast<unsigned long long>(manager.current()->version()),
              server.port(), budget.c_str(), slow_log.c_str(),
              manager.Stats().shards,
              engine ? (storage_options.sync ? "wal+fsync" : "wal") : "none");
  if (exporter != nullptr) {
    std::printf("praguedb: metrics on http://localhost:%u/metrics\n",
                exporter->port());
  }
  std::fflush(stdout);

  std::signal(SIGINT, HandleServeSignal);
  std::signal(SIGTERM, HandleServeSignal);
  while (!g_serve_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("praguedb: shutting down (%llu connections served)\n",
              static_cast<unsigned long long>(server.connections_accepted()));
  if (exporter_holder) exporter_holder->Stop();
  server.Stop();
  watchdog.Stop();
  if (engine) {
    // Fold the WAL tail into a fresh segment so the next open replays
    // nothing. Best-effort: the WAL alone already makes restart correct.
    if (Status st = manager.Checkpoint(); !st.ok()) {
      std::fprintf(stderr, "praguedb: final checkpoint failed: %s\n",
                   st.ToString().c_str());
    }
  }
  return kExitOk;
}

// Offline checkpoint: open the data dir (replaying the WAL tail through
// the index-maintenance delta path) and fold the result into a fresh
// segment, so the next open is pure mmap.
int CmdCompact(int argc, char** argv) {
  int64_t verify = ExtractInt64Flag(&argc, argv, "--verify-postings-crc=", 0);
  if (argc < 2) return Usage();
  const std::string dir = argv[1];
  if (!storage::StorageEngine::Exists(dir)) {
    return Fail(Status::NotFound(dir + " has no manifest"));
  }
  storage::StorageOptions options;
  options.verify_postings_crc = verify != 0;
  Stopwatch timer;
  Result<std::unique_ptr<storage::StorageEngine>> opened =
      storage::StorageEngine::Open(dir, options);
  if (!opened.ok()) return Fail(opened.status());
  storage::StorageEngine& engine = **opened;
  const storage::StorageStats before = engine.Stats();
  const storage::RecoveredState& recovered = engine.recovered();
  if (Status st = engine.Checkpoint(*recovered.snapshot,
                                    recovered.manifest.alpha);
      !st.ok()) {
    return Fail(st);
  }
  const storage::StorageStats after = engine.Stats();
  if (before.last_checkpoint_version == after.last_checkpoint_version) {
    std::printf("%s: already compact at version %llu (%llu segment bytes)\n",
                dir.c_str(),
                static_cast<unsigned long long>(after.last_checkpoint_version),
                static_cast<unsigned long long>(after.segment_bytes));
  } else {
    std::printf(
        "%s: compacted version %llu -> %llu in %.2fs (%llu WAL records "
        "folded, %llu WAL bytes truncated, segment %llu bytes)\n",
        dir.c_str(),
        static_cast<unsigned long long>(before.last_checkpoint_version),
        static_cast<unsigned long long>(after.last_checkpoint_version),
        timer.ElapsedSeconds(),
        static_cast<unsigned long long>(before.recovery_replayed_records),
        static_cast<unsigned long long>(before.wal_bytes),
        static_cast<unsigned long long>(after.segment_bytes));
  }
  return kExitOk;
}

const char* FragmentStatusText(FragmentStatus status) {
  switch (status) {
    case FragmentStatus::kFrequent:
      return "frequent";
    case FragmentStatus::kInfrequent:
      return "infrequent";
    case FragmentStatus::kNoExactMatch:
      return "no exact match";
  }
  return "?";
}

void ShellHelp() {
  std::printf(
      "commands:\n"
      "  open [timeout_ms]          start this connection's session\n"
      "  edge <u> <lu> <v> <lv> [le] add an edge between node handles\n"
      "  delete <u> <v>             delete the edge between two handles\n"
      "  run [k]                    run the query (list at most k matches)\n"
      "  batch <p1> ; <p2> ; ...    BATCH_RUN: one member per ';'-separated\n"
      "                             pattern (pattern syntax of `praguedb run`)\n"
      "  append <g1> ; <g2> ; ...   APPEND: durably add data graphs (same\n"
      "                             syntax; new label names are allowed)\n"
      "  cancel [id]                cancel an in-flight run (by request id)\n"
      "  stats                      server-wide session statistics\n"
      "  metrics                    server Prometheus metrics dump\n"
      "  close                      close the session and disconnect\n"
      "  quit                       leave the shell (closes politely)\n");
}

void PrintStep(const StepReply& step) {
  std::printf("e%-3d %-15s %s |Rq|=%zu |Rfree|=%zu |Rver|=%zu\n", step.edge,
              FragmentStatusText(step.status),
              step.similarity_mode ? "sim" : "   ", step.exact_candidates,
              step.free_candidates, step.ver_candidates);
}

void PrintRun(const RunReply& run) {
  if (run.truncated) {
    std::printf("TRUNCATED during %s — partial results:\n",
                run.deadline_phase.c_str());
  }
  if (run.similarity) {
    std::printf("%llu approximate matches (SRT %.3f ms)\n",
                static_cast<unsigned long long>(run.total_matches),
                run.srt_ms);
    for (const auto& m : run.similar) {
      std::printf("  g%-8u distance=%d\n", m.gid, m.distance);
    }
  } else {
    std::printf("%llu exact matches (SRT %.3f ms):",
                static_cast<unsigned long long>(run.total_matches),
                run.srt_ms);
    for (GraphId gid : run.exact) std::printf(" g%u", gid);
    std::printf("\n");
  }
}

void PrintStats(const StatsReply& stats) {
  std::printf(
      "version %llu; %llu open sessions (%llu opened all-time); %llu "
      "snapshots published; %llu runs served (%llu truncated, %llu shed); "
      "%llu tenants tracked\n",
      static_cast<unsigned long long>(stats.current_version),
      static_cast<unsigned long long>(stats.open_sessions),
      static_cast<unsigned long long>(stats.sessions_opened),
      static_cast<unsigned long long>(stats.snapshots_published),
      static_cast<unsigned long long>(stats.runs_served),
      static_cast<unsigned long long>(stats.runs_truncated),
      static_cast<unsigned long long>(stats.runs_shed),
      static_cast<unsigned long long>(stats.tenants));
  if (stats.durable) {
    std::printf("durable: %llu WAL bytes since checkpoint at version %llu\n",
                static_cast<unsigned long long>(stats.wal_bytes),
                static_cast<unsigned long long>(
                    stats.last_checkpoint_version));
  }
  for (const auto& [id, version] : stats.sessions) {
    std::printf("  session %llu pinned at version %llu\n",
                static_cast<unsigned long long>(id),
                static_cast<unsigned long long>(version));
  }
}

// The remainder of a shell line as ';'-separated, whitespace-trimmed
// patterns (shared by `batch` and `append`).
std::vector<std::string> SplitShellPatterns(std::istringstream& in) {
  std::string rest;
  std::getline(in, rest);
  std::vector<std::string> patterns;
  size_t start = 0;
  while (start <= rest.size()) {
    size_t semi = rest.find(';', start);
    std::string pattern = rest.substr(
        start, semi == std::string::npos ? std::string::npos : semi - start);
    const char* ws = " \t";
    size_t first = pattern.find_first_not_of(ws);
    if (first != std::string::npos) {
      patterns.push_back(
          pattern.substr(first, pattern.find_last_not_of(ws) - first + 1));
    }
    if (semi == std::string::npos) break;
    start = semi + 1;
  }
  return patterns;
}

// One shell line; returns false when the shell should exit.
bool ShellDispatch(PragueClient& client, const std::string& line) {
  std::istringstream in(line);
  std::string verb;
  if (!(in >> verb)) return true;  // blank line
  auto report = [](const Status& st) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  };
  if (verb == "help") {
    ShellHelp();
  } else if (verb == "open") {
    int64_t ms = -1;
    in >> ms;
    Result<OpenReply> open = client.Open(ms);
    if (!open.ok()) {
      report(open.status());
    } else {
      std::printf("session %llu pinned at snapshot version %llu\n",
                  static_cast<unsigned long long>(open->session_id),
                  static_cast<unsigned long long>(open->version));
    }
  } else if (verb == "edge") {
    uint32_t u = 0, v = 0;
    std::string lu, lv;
    uint32_t le = 0;
    if (!(in >> u >> lu >> v >> lv)) {
      std::fprintf(stderr, "usage: edge <u> <lu> <v> <lv> [le]\n");
      return true;
    }
    in >> le;
    Result<StepReply> step = client.AddEdge(u, lu, v, lv, le);
    if (!step.ok()) {
      report(step.status());
    } else {
      PrintStep(*step);
    }
  } else if (verb == "delete") {
    uint32_t u = 0, v = 0;
    if (!(in >> u >> v)) {
      std::fprintf(stderr, "usage: delete <u> <v>\n");
      return true;
    }
    Result<StepReply> step = client.DeleteEdge(u, v);
    if (!step.ok()) {
      report(step.status());
    } else {
      PrintStep(*step);
    }
  } else if (verb == "run") {
    uint64_t k = 0;
    in >> k;
    Result<RunReply> run = client.Run(k);
    if (!run.ok()) {
      report(run.status());
    } else {
      PrintRun(*run);
    }
  } else if (verb == "batch") {
    // Everything after the verb is a ';'-separated list of patterns.
    std::vector<std::string> patterns = SplitShellPatterns(in);
    if (patterns.empty()) {
      std::fprintf(stderr, "usage: batch <pattern> [; <pattern> ...]\n");
      return true;
    }
    Result<uint64_t> id = client.StartBatchRun(patterns);
    if (!id.ok()) {
      report(id.status());
      return client.connected();
    }
    Result<BatchRunReply> reply = client.WaitBatchRun(*id);
    if (!reply.ok()) {
      // The server echoes the request id on ERR replies; surface it so a
      // failure is attributable when several requests are in flight.
      std::fprintf(stderr, "error: request #%llu: %s\n",
                   static_cast<unsigned long long>(*id),
                   reply.status().ToString().c_str());
      return client.connected();
    }
    for (size_t i = 0; i < reply->members.size(); ++i) {
      std::printf("[%zu] %s\n", i, patterns[i].c_str());
      if (reply->members[i].ok()) {
        PrintRun(*reply->members[i]);
      } else {
        std::fprintf(stderr, "  error: %s\n",
                     reply->members[i].status().ToString().c_str());
      }
    }
  } else if (verb == "append") {
    std::vector<std::string> patterns = SplitShellPatterns(in);
    if (patterns.empty()) {
      std::fprintf(stderr, "usage: append <graph> [; <graph> ...]\n");
      return true;
    }
    Result<AppendReply> reply = client.Append(patterns);
    if (!reply.ok()) {
      report(reply.status());
    } else {
      std::printf(
          "appended %llu graphs -> version %llu (sigma %llu%s; "
          "+%llu promoted, -%llu demoted, %llu discovered)\n",
          static_cast<unsigned long long>(reply->added),
          static_cast<unsigned long long>(reply->version),
          static_cast<unsigned long long>(reply->min_support),
          reply->reclassified ? ", reclassified" : "",
          static_cast<unsigned long long>(reply->promoted),
          static_cast<unsigned long long>(reply->demoted),
          static_cast<unsigned long long>(reply->discovered));
    }
  } else if (verb == "cancel") {
    uint64_t id = 0;
    if (in >> id) {
      if (Status st = client.CancelRun(id); !st.ok()) report(st);
    } else {
      if (Status st = client.Cancel(); !st.ok()) report(st);
    }
  } else if (verb == "stats") {
    Result<StatsReply> stats = client.Stats();
    if (!stats.ok()) {
      report(stats.status());
    } else {
      PrintStats(*stats);
    }
  } else if (verb == "metrics") {
    Result<std::string> metrics = client.Metrics();
    if (!metrics.ok()) {
      report(metrics.status());
    } else {
      std::printf("%s", metrics->c_str());
    }
  } else if (verb == "close") {
    if (Status st = client.Close(); !st.ok()) report(st);
    std::printf("bye\n");
    return false;
  } else if (verb == "quit" || verb == "exit") {
    if (client.connected()) client.Close();
    return false;
  } else {
    std::fprintf(stderr, "unknown command '%s' (try 'help')\n", verb.c_str());
  }
  return client.connected();
}

int CmdShell(int argc, char** argv) {
  std::string target;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--connect=", 10) == 0) {
      target = argv[i] + 10;
    } else if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      target = argv[++i];
    } else if (argv[i][0] != '-') {
      target = argv[i];
    }
  }
  size_t colon = target.rfind(':');
  if (target.empty() || colon == std::string::npos) return Usage();
  std::string host = target.substr(0, colon);
  int port = std::atoi(target.c_str() + colon + 1);
  if (port <= 0 || port > 65535) return Usage();

  PragueClient client;
  if (Status st = client.Connect(host, static_cast<uint16_t>(port));
      !st.ok()) {
    return Fail(st);
  }
  const bool interactive = ::isatty(0) != 0;
  if (interactive) {
    std::printf("connected to %s — 'help' lists commands\n", target.c_str());
  }
  std::string line;
  for (;;) {
    if (interactive) {
      std::printf("prague> ");
      std::fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    if (!ShellDispatch(client, line)) break;
  }
  if (client.connected()) client.Close();
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  if (cmd == "gen") return CmdGen(argc - 1, argv + 1);
  if (cmd == "mine") return CmdMine(argc - 1, argv + 1);
  if (cmd == "index") return CmdIndex(argc - 1, argv + 1);
  if (cmd == "info") return CmdInfo(argc - 1, argv + 1);
  if (cmd == "query") return CmdQuery(argc - 1, argv + 1);
  if (cmd == "sample") return CmdSample(argc - 1, argv + 1);
  if (cmd == "append") return CmdAppend(argc - 1, argv + 1);
  if (cmd == "stats") return CmdStats(argc - 1, argv + 1);
  if (cmd == "run") return CmdRun(argc - 1, argv + 1);
  if (cmd == "serve") return CmdServe(argc - 1, argv + 1);
  if (cmd == "compact") return CmdCompact(argc - 1, argv + 1);
  if (cmd == "shell") return CmdShell(argc - 1, argv + 1);
  return Usage();
}
