// SPIG construction and maintenance: Definition 4 structure, Fragment-List
// correctness against direct index probing, Lemma 1, formulation-sequence
// invariance, and deletion updates (Algorithm 6 lines 12-14).

#include <gtest/gtest.h>

#include <map>

#include "core/spig.h"
#include "core/visual_query.h"
#include "datasets/query_workload.h"
#include "graph/vf2.h"
#include "test_fixtures.h"
#include "util/rng.h"

namespace prague {
namespace {

// Replays a query spec into a VisualQuery + SpigSet.
struct BuiltQuery {
  VisualQuery query;
  SpigSet spigs;
};

BuiltQuery Formulate(const Graph& q, const std::vector<EdgeId>& sequence,
                     const ActionAwareIndexes& indexes) {
  BuiltQuery out;
  std::map<NodeId, NodeId> node_map;
  auto user_node = [&](NodeId n) {
    auto it = node_map.find(n);
    if (it != node_map.end()) return it->second;
    NodeId u = out.query.AddNode(q.NodeLabel(n));
    node_map.emplace(n, u);
    return u;
  };
  for (EdgeId e : sequence) {
    const Edge& edge = q.GetEdge(e);
    Result<FormulationId> ell =
        out.query.AddEdge(user_node(edge.u), user_node(edge.v), edge.label);
    if (!ell.ok()) std::abort();
    Result<const Spig*> spig =
        out.spigs.AddForNewEdge(out.query, *ell, indexes);
    if (!spig.ok()) std::abort();
  }
  return out;
}

// A 4-edge query over the tiny fixture: C-C-C triangle with pendant S
// (exactly data graph g0, so exact matches exist at every prefix).
Graph TriangleWithS() {
  return testing::MakeGraph({testing::kC, testing::kC, testing::kC,
                             testing::kS},
                            {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
}

size_t Binomial(size_t n, size_t k) {
  if (k > n) return 0;
  size_t r = 1;
  for (size_t i = 0; i < k; ++i) r = r * (n - i) / (i + 1);
  return r;
}

TEST(SpigTest, VerticesAreConnectedSupersetsOfNewEdge) {
  const auto& fixture = testing::TinyFixture::Get();
  Graph q = TriangleWithS();
  BuiltQuery built =
      Formulate(q, DefaultFormulationSequence(q), fixture.indexes);
  for (FormulationId ell : built.query.AliveEdgeIds()) {
    const Spig* spig = built.spigs.Find(ell);
    ASSERT_NE(spig, nullptr);
    for (int level = 1; level <= spig->MaxLevel(); ++level) {
      for (const SpigVertex& v : spig->Level(level)) {
        EXPECT_TRUE(v.edge_list & FormulationBit(ell));
        EXPECT_EQ(v.Level(), level);
        EXPECT_EQ(v.fragment.EdgeCount(), static_cast<size_t>(level));
        EXPECT_TRUE(v.fragment.IsConnected());
        EXPECT_EQ(v.code, GetCanonicalCode(v.fragment));
      }
    }
  }
}

TEST(SpigTest, SourceAndTargetVertices) {
  const auto& fixture = testing::TinyFixture::Get();
  Graph q = TriangleWithS();
  BuiltQuery built =
      Formulate(q, DefaultFormulationSequence(q), fixture.indexes);
  FormulationId last = built.query.LastFormulationId();
  const Spig* spig = built.spigs.Find(last);
  ASSERT_NE(spig, nullptr);
  EXPECT_EQ(spig->Source().Level(), 1);
  // The target vertex of the last SPIG is the whole query.
  const SpigVertex* target = built.spigs.FindVertex(built.query.FullMask());
  ASSERT_NE(target, nullptr);
  EXPECT_TRUE(AreIsomorphic(target->fragment, q));
}

TEST(SpigTest, EveryConnectedSubsetAppearsInExactlyOneSpig) {
  const auto& fixture = testing::TinyFixture::Get();
  Graph q = TriangleWithS();
  BuiltQuery built =
      Formulate(q, DefaultFormulationSequence(q), fixture.indexes);
  const Graph& compiled = built.query.CurrentGraph();
  auto by_size = ConnectedEdgeSubsetsBySize(compiled);
  for (size_t k = 1; k <= compiled.EdgeCount(); ++k) {
    for (EdgeMask gmask : by_size[k]) {
      FormulationMask fmask = built.query.ToFormulationMask(gmask);
      int owners = 0;
      for (FormulationId ell : built.query.AliveEdgeIds()) {
        const Spig* spig = built.spigs.Find(ell);
        if (spig->FindByEdgeList(fmask) != nullptr) ++owners;
      }
      EXPECT_EQ(owners, 1) << "mask " << fmask;
      EXPECT_NE(built.spigs.FindVertex(fmask), nullptr);
    }
    // Lemma 1: N(k) ≤ C(n, k).
    EXPECT_EQ(built.spigs.VertexCountAtLevel(static_cast<int>(k)),
              by_size[k].size());
    EXPECT_LE(by_size[k].size(), Binomial(compiled.EdgeCount(), k));
  }
}

TEST(SpigTest, FragmentListsMatchDirectIndexProbing) {
  const auto& fixture = testing::TinyFixture::Get();
  Graph q = TriangleWithS();
  BuiltQuery built =
      Formulate(q, DefaultFormulationSequence(q), fixture.indexes);
  const A2FIndex& a2f = fixture.indexes.a2f;
  const A2IIndex& a2i = fixture.indexes.a2i;
  for (FormulationId ell : built.query.AliveEdgeIds()) {
    const Spig* spig = built.spigs.Find(ell);
    for (int level = 1; level <= spig->MaxLevel(); ++level) {
      for (const SpigVertex& v : spig->Level(level)) {
        std::optional<A2fId> fid = a2f.Lookup(v.code);
        std::optional<A2iId> did = a2i.Lookup(v.code);
        if (fid) {
          EXPECT_EQ(v.frag.freq_id, fid);
          EXPECT_FALSE(v.frag.dif_id.has_value());
          EXPECT_TRUE(v.frag.phi.empty());
          EXPECT_TRUE(v.frag.upsilon.empty());
        } else if (did) {
          EXPECT_EQ(v.frag.dif_id, did);
          EXPECT_TRUE(v.frag.phi.empty());
          EXPECT_TRUE(v.frag.upsilon.empty());
        } else {
          // NIF: Φ must be exactly the frequent (level-1)-subgraphs, Υ
          // exactly the DIF subgraphs of any size — recomputed here by
          // brute force.
          std::vector<A2fId> phi;
          std::vector<A2iId> upsilon;
          auto subsets = ConnectedEdgeSubsetsBySize(v.fragment);
          for (size_t k = 1; k < v.fragment.EdgeCount(); ++k) {
            for (EdgeMask mask : subsets[k]) {
              Graph sub = ExtractEdgeSubgraph(v.fragment, mask).graph;
              CanonicalCode code = GetCanonicalCode(sub);
              if (k + 1 == v.fragment.EdgeCount()) {
                if (auto f = a2f.Lookup(code)) phi.push_back(*f);
              }
              if (auto d = a2i.Lookup(code)) upsilon.push_back(*d);
            }
          }
          std::sort(phi.begin(), phi.end());
          phi.erase(std::unique(phi.begin(), phi.end()), phi.end());
          std::sort(upsilon.begin(), upsilon.end());
          upsilon.erase(std::unique(upsilon.begin(), upsilon.end()),
                        upsilon.end());
          EXPECT_EQ(v.frag.phi, phi) << v.code;
          EXPECT_EQ(v.frag.upsilon, upsilon) << v.code;
        }
      }
    }
  }
}

TEST(SpigTest, SequenceInvarianceOfLevelCounts) {
  // Different formulation sequences give different SPIG sets but identical
  // per-level totals (Section V-B).
  const auto& fixture = testing::TinyFixture::Get();
  Graph q = TriangleWithS();
  BuiltQuery a = Formulate(q, DefaultFormulationSequence(q), fixture.indexes);
  Rng rng(99);
  for (int trial = 0; trial < 5; ++trial) {
    BuiltQuery b =
        Formulate(q, RandomFormulationSequence(q, &rng), fixture.indexes);
    for (size_t k = 1; k <= q.EdgeCount(); ++k) {
      EXPECT_EQ(a.spigs.VertexCountAtLevel(static_cast<int>(k)),
                b.spigs.VertexCountAtLevel(static_cast<int>(k)));
    }
  }
}

TEST(SpigTest, DeletionRemovesSpigAndAffectedVertices) {
  const auto& fixture = testing::TinyFixture::Get();
  Graph q = TriangleWithS();
  BuiltQuery built =
      Formulate(q, DefaultFormulationSequence(q), fixture.indexes);
  // Delete a deletable edge.
  FormulationId victim = 0;
  for (FormulationId ell : built.query.AliveEdgeIds()) {
    if (built.query.CanDelete(ell)) {
      victim = ell;
      break;
    }
  }
  ASSERT_NE(victim, 0);
  ASSERT_TRUE(built.query.DeleteEdge(victim).ok());
  built.spigs.RemoveForDeletedEdge(victim);
  EXPECT_EQ(built.spigs.Find(victim), nullptr);
  for (FormulationId ell : built.query.AliveEdgeIds()) {
    const Spig* spig = built.spigs.Find(ell);
    ASSERT_NE(spig, nullptr);
    for (int level = 1; level <= spig->MaxLevel(); ++level) {
      for (const SpigVertex& v : spig->Level(level)) {
        EXPECT_FALSE(v.edge_list & FormulationBit(victim));
      }
    }
  }
}

TEST(SpigTest, DeletionPreservesSubsetCoverageInvariant) {
  // After a deletion the SPIG set still covers every connected subset of
  // the reduced query exactly once.
  const auto& fixture = testing::TinyFixture::Get();
  Graph q = TriangleWithS();
  BuiltQuery built =
      Formulate(q, DefaultFormulationSequence(q), fixture.indexes);
  FormulationId victim = built.query.AliveEdgeIds()[1];
  if (!built.query.CanDelete(victim)) victim = built.query.AliveEdgeIds()[0];
  ASSERT_TRUE(built.query.DeleteEdge(victim).ok());
  built.spigs.RemoveForDeletedEdge(victim);
  const Graph& compiled = built.query.CurrentGraph();
  auto by_size = ConnectedEdgeSubsetsBySize(compiled);
  for (size_t k = 1; k <= compiled.EdgeCount(); ++k) {
    EXPECT_EQ(built.spigs.VertexCountAtLevel(static_cast<int>(k)),
              by_size[k].size());
    for (EdgeMask gmask : by_size[k]) {
      EXPECT_NE(
          built.spigs.FindVertex(built.query.ToFormulationMask(gmask)),
          nullptr);
    }
  }
}

TEST(SpigTest, RejectsDuplicateSpig) {
  const auto& fixture = testing::TinyFixture::Get();
  VisualQuery query;
  NodeId a = query.AddNode(testing::kC);
  NodeId b = query.AddNode(testing::kC);
  Result<FormulationId> ell = query.AddEdge(a, b);
  ASSERT_TRUE(ell.ok());
  SpigSet spigs;
  ASSERT_TRUE(spigs.AddForNewEdge(query, *ell, fixture.indexes).ok());
  EXPECT_FALSE(spigs.AddForNewEdge(query, *ell, fixture.indexes).ok());
}

TEST(SpigTest, ByteSizeIsPositive) {
  const auto& fixture = testing::TinyFixture::Get();
  Graph q = TriangleWithS();
  BuiltQuery built =
      Formulate(q, DefaultFormulationSequence(q), fixture.indexes);
  EXPECT_GT(built.spigs.ByteSize(), 0u);
  EXPECT_GT(built.spigs.TotalVertexCount(), q.EdgeCount());
}

}  // namespace
}  // namespace prague
