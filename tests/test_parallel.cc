// ThreadPool, parallel-verification, and parallel-SPIG-construction
// correctness: parallel results must be byte-identical to sequential
// ones, and the memoized candidate engine must answer exactly like the
// cold path.

#include <gtest/gtest.h>

#include <atomic>
#include <map>

#include "core/candidates.h"
#include "core/prague_session.h"
#include "core/results.h"
#include "datasets/query_workload.h"
#include "test_fixtures.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace prague {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { ++counter; });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  pool.ParallelFor(1000, 8, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ++touched[i];
  });
  for (size_t i = 0; i < touched.size(); ++i) {
    EXPECT_EQ(touched[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, ParallelForSmallRangeRunsInline) {
  ThreadPool pool(4);
  std::vector<int> touched(5, 0);
  pool.ParallelFor(5, 16, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ++touched[i];
  });
  for (int t : touched) EXPECT_EQ(t, 1);
}

TEST(ThreadPoolTest, ParallelForZeroMinChunkCoversRange) {
  // min_chunk = 0 used to divide by zero when sizing chunks; it now
  // behaves exactly like min_chunk = 1.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(64);
  pool.ParallelFor(64, 0, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ++touched[i];
  });
  for (size_t i = 0; i < touched.size(); ++i) {
    EXPECT_EQ(touched[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, AtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ParallelVerificationTest, ExactVerificationMatchesSequential) {
  const auto& fixture = testing::AidsFixture::Get();
  WorkloadGenerator workload(&fixture.db, 77);
  Result<VisualQuerySpec> spec = workload.ContainmentQuery(5, "pv");
  ASSERT_TRUE(spec.ok());
  IdSet all = fixture.db.AllIds();
  ThreadPool pool(4);
  std::vector<GraphId> sequential =
      ExactVerification(spec->graph, all, fixture.db);
  std::vector<GraphId> parallel =
      ExactVerification(spec->graph, all, fixture.db, &pool);
  EXPECT_EQ(sequential, parallel);
  EXPECT_FALSE(sequential.empty());
}

void Feed(PragueSession* session, const Graph& q,
          const std::vector<EdgeId>& sequence) {
  std::map<NodeId, NodeId> node_map;
  auto user_node = [&](NodeId n) {
    auto it = node_map.find(n);
    if (it != node_map.end()) return it->second;
    NodeId u = session->AddNode(q.NodeLabel(n));
    node_map.emplace(n, u);
    return u;
  };
  for (EdgeId e : sequence) {
    const Edge& edge = q.GetEdge(e);
    if (!session->AddEdge(user_node(edge.u), user_node(edge.v), edge.label)
             .ok()) {
      std::abort();
    }
  }
}

class ParallelRunTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelRunTest, SimilarityResultsIdenticalAcrossThreadCounts) {
  const auto& fixture = testing::AidsFixture::Get();
  WorkloadGenerator workload(&fixture.db, 700 + GetParam());
  Result<VisualQuerySpec> spec = workload.SimilarityQuery(6, 2, "p");
  ASSERT_TRUE(spec.ok());
  auto run = [&](size_t threads) {
    PragueConfig config;
    config.sigma = 3;
    config.verification_threads = threads;
    PragueSession session(fixture.snapshot, config);
    Feed(&session, spec->graph, spec->sequence);
    Result<QueryResults> results = session.Run(nullptr);
    if (!results.ok()) std::abort();
    return *results;
  };
  QueryResults one = run(1);
  QueryResults four = run(4);
  EXPECT_EQ(one.similarity, four.similarity);
  EXPECT_EQ(one.exact, four.exact);
  ASSERT_EQ(one.similar.size(), four.similar.size());
  for (size_t i = 0; i < one.similar.size(); ++i) {
    EXPECT_EQ(one.similar[i], four.similar[i]) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelRunTest,
                         ::testing::Range<uint64_t>(0, 6));

// Asserts session `b` carries exactly the SPIG set of session `a`: every
// connected edge subset resolves (via the by-mask lookup) to a vertex
// with identical Edge List, level, canonical code, and Fragment List.
void ExpectIdenticalSpigs(const PragueSession& a, const PragueSession& b) {
  ASSERT_EQ(a.spigs().SpigCount(), b.spigs().SpigCount());
  ASSERT_EQ(a.spigs().TotalVertexCount(), b.spigs().TotalVertexCount());
  if (a.query().Empty()) return;
  const Graph& q = a.query().CurrentGraph();
  auto by_size = ConnectedEdgeSubsetsBySize(q);
  for (size_t k = 1; k <= q.EdgeCount(); ++k) {
    for (EdgeMask gmask : by_size[k]) {
      FormulationMask fmask = a.query().ToFormulationMask(gmask);
      const SpigVertex* va = a.spigs().FindVertex(fmask);
      const SpigVertex* vb = b.spigs().FindVertex(fmask);
      ASSERT_NE(va, nullptr) << "mask " << fmask;
      ASSERT_NE(vb, nullptr) << "mask " << fmask;
      EXPECT_EQ(va->edge_list, vb->edge_list);
      EXPECT_EQ(va->Level(), vb->Level());
      EXPECT_EQ(va->code, vb->code);
      EXPECT_EQ(va->frag.freq_id, vb->frag.freq_id);
      EXPECT_EQ(va->frag.dif_id, vb->frag.dif_id);
      EXPECT_EQ(va->frag.phi, vb->frag.phi);
      EXPECT_EQ(va->frag.upsilon, vb->frag.upsilon);
    }
  }
}

void ExpectIdenticalCandidates(const PragueSession& a,
                               const PragueSession& b) {
  EXPECT_EQ(a.exact_candidates(), b.exact_candidates());
  EXPECT_EQ(a.similarity_mode(), b.similarity_mode());
  EXPECT_EQ(a.similar_candidates().free, b.similar_candidates().free);
  EXPECT_EQ(a.similar_candidates().ver, b.similar_candidates().ver);
}

// Fuzzed 30-step add/delete/relabel session driven in lockstep through
// three engines: sequential build + memo (reference), parallel build
// (threads=4) + memo, and parallel build with the memo disabled (cold).
// All three must agree on SPIGs, by-mask lookups, and candidate sets
// after every step.
class SpigDeterminismTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SpigDeterminismTest, ParallelAndMemoizedMatchSequentialCold) {
  const auto& fixture = testing::TinyFixture::Get();
  Rng rng(GetParam() * 6271 + 5);
  PragueConfig seq_config;
  seq_config.spig_threads = 1;
  PragueConfig par_config;
  par_config.spig_threads = 4;
  PragueConfig cold_config;
  cold_config.spig_threads = 4;
  cold_config.candidate_memo = false;
  PragueSession seq(fixture.snapshot, seq_config);
  PragueSession par(fixture.snapshot, par_config);
  PragueSession cold(fixture.snapshot, cold_config);
  PragueSession* sessions[] = {&seq, &par, &cold};
  std::vector<Label> labels = {testing::kC, testing::kS, testing::kO,
                               testing::kN};

  int performed = 0;
  for (int step = 0; step < 60 && performed < 30; ++step) {
    size_t action = rng.Below(10);
    if (seq.query().Empty() || action < 5) {
      NodeId u, v;
      if (!seq.query().Empty() && rng.Chance(0.3) &&
          seq.query().UserNodeCount() >= 2) {
        u = static_cast<NodeId>(rng.Below(seq.query().UserNodeCount()));
        v = static_cast<NodeId>(rng.Below(seq.query().UserNodeCount()));
      } else if (seq.query().Empty()) {
        Label lu = labels[rng.Below(labels.size())];
        Label lv = labels[rng.Below(labels.size())];
        for (PragueSession* s : sessions) {
          u = s->AddNode(lu);
          v = s->AddNode(lv);
        }
      } else {
        Label lv = labels[rng.Below(labels.size())];
        u = static_cast<NodeId>(rng.Below(seq.query().UserNodeCount()));
        for (PragueSession* s : sessions) v = s->AddNode(lv);
      }
      if (seq.query().EdgeCount() >= 8) continue;  // keep it small
      bool ok = seq.AddEdge(u, v).ok();
      EXPECT_EQ(par.AddEdge(u, v).ok(), ok);
      EXPECT_EQ(cold.AddEdge(u, v).ok(), ok);
      if (!ok) continue;
      ++performed;
    } else if (action < 7) {
      std::vector<FormulationId> alive = seq.query().AliveEdgeIds();
      if (alive.empty()) continue;
      FormulationId ell = alive[rng.Below(alive.size())];
      if (!seq.query().CanDelete(ell)) continue;
      for (PragueSession* s : sessions) ASSERT_TRUE(s->DeleteEdge(ell).ok());
      ++performed;
    } else {
      if (seq.query().UserNodeCount() == 0) continue;
      NodeId n = static_cast<NodeId>(rng.Below(seq.query().UserNodeCount()));
      Label l = labels[rng.Below(labels.size())];
      for (PragueSession* s : sessions) {
        ASSERT_TRUE(s->RelabelNode(n, l).ok());
      }
      ++performed;
    }

    ExpectIdenticalSpigs(seq, par);
    ExpectIdenticalSpigs(seq, cold);
    ExpectIdenticalCandidates(seq, par);
    ExpectIdenticalCandidates(seq, cold);
  }
  EXPECT_GE(performed, 20);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpigDeterminismTest,
                         ::testing::Range<uint64_t>(0, 8));

// A straight-line 10-edge formulation over the larger fixture, so the
// parallel build sees levels wide enough to actually fan out.
TEST(SpigDeterminismTest, TenEdgeQueryMatchesAcrossThreadCounts) {
  const auto& fixture = testing::AidsFixture::Get();
  WorkloadGenerator workload(&fixture.db, 321);
  Result<VisualQuerySpec> spec = workload.ContainmentQuery(10, "det10");
  ASSERT_TRUE(spec.ok());
  auto build = [&](size_t threads) {
    PragueConfig config;
    config.spig_threads = threads;
    auto session =
        std::make_unique<PragueSession>(fixture.snapshot, config);
    std::vector<NodeId> node_map(spec->graph.NodeCount(), kInvalidNode);
    for (EdgeId e : spec->sequence) {
      const Edge& edge = spec->graph.GetEdge(e);
      for (NodeId n : {edge.u, edge.v}) {
        if (node_map[n] == kInvalidNode) {
          node_map[n] = session->AddNode(spec->graph.NodeLabel(n));
        }
      }
      EXPECT_TRUE(
          session->AddEdge(node_map[edge.u], node_map[edge.v], edge.label)
              .ok());
    }
    return session;
  };
  auto one = build(1);
  auto four = build(4);
  ExpectIdenticalSpigs(*one, *four);
  ExpectIdenticalCandidates(*one, *four);
}

// The memoized candidate path must return exactly what a cold
// recomputation returns, including after deletions (caches survive) and
// relabels (caches reset).
TEST(CandidateMemoTest, CacheMatchesColdRecomputeAfterModifications) {
  const auto& fixture = testing::TinyFixture::Get();
  PragueSession session(fixture.snapshot);
  NodeId a = session.AddNode(testing::kC);
  NodeId b = session.AddNode(testing::kC);
  NodeId c = session.AddNode(testing::kS);
  NodeId d = session.AddNode(testing::kC);
  ASSERT_TRUE(session.AddEdge(a, b).ok());
  ASSERT_TRUE(session.AddEdge(b, c).ok());
  ASSERT_TRUE(session.AddEdge(c, d).ok());
  ASSERT_TRUE(session.AddEdge(a, d).ok());
  ASSERT_TRUE(session.RelabelNode(b, testing::kO).ok());
  ASSERT_TRUE(session.DeleteEdge(4).ok());

  session.spigs().ForEachVertexAtLevel(1, [&](const Spig&,
                                             const SpigVertex& v) {
    EXPECT_EQ(CachedSubCandidates(v, fixture.indexes),
              ExactSubCandidates(v, fixture.indexes));
  });
  const SimilarCandidates warm = SimilarSubCandidates(
      session.spigs(), session.query().EdgeCount(), 3, fixture.indexes, true);
  session.spigs().InvalidateCandidateCaches();
  const SimilarCandidates recomputed = SimilarSubCandidates(
      session.spigs(), session.query().EdgeCount(), 3, fixture.indexes,
      false);
  EXPECT_EQ(warm.free, recomputed.free);
  EXPECT_EQ(warm.ver, recomputed.ver);
  EXPECT_EQ(warm.TotalCandidates(), recomputed.TotalCandidates());
}

}  // namespace
}  // namespace prague
