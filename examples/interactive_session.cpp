// Interactive session: a line-oriented stand-in for the paper's visual
// interface (Figure 2). Each command is one GUI action; the engine works
// after every action, exactly as PRAGUE does during GUI latency.
//
// Commands (one per line, '#' comments ignored):
//   load <path>          load a database in gSpan text format
//   gen aids|synth <n>   generate a database instead
//   index [alpha] [beta] mine + build action-aware indexes
//   node <label>         drop a node (prints its id)
//   edge <u> <v>         draw an edge between node ids
//   pattern <expr>       draw a whole textual pattern, e.g.
//                        pattern (a:C)-(b:C), (b)-(c:S)
//   delete <ell>         delete edge e<ell>
//   suggest              ask for a modification suggestion
//   sim                  opt into similarity search (SimQuery)
//   sigma <k>            set the subgraph distance threshold
//   status               print the engine state
//   run                  execute the query (prints SRT + results)
//   reset                start a new query over the same database
//   quit
//
// Try:  printf 'gen aids 500\nindex\nnode C\nnode C\nnode C\nedge 0 1\n
//        edge 1 2\nedge 0 2\nstatus\nrun\nquit\n' | ./interactive_session

#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "core/prague_session.h"
#include "datasets/aids_generator.h"
#include "datasets/synthetic_generator.h"
#include "graph/graph_io.h"
#include "index/action_aware_index.h"
#include "query/pattern_parser.h"
#include "util/bytes.h"

using namespace prague;

namespace {

const char* StatusName(FragmentStatus status) {
  switch (status) {
    case FragmentStatus::kFrequent:
      return "frequent";
    case FragmentStatus::kInfrequent:
      return "infrequent";
    case FragmentStatus::kNoExactMatch:
      return "similar";
  }
  return "?";
}

struct Repl {
  GraphDatabase db;
  std::unique_ptr<ActionAwareIndexes> indexes;
  std::unique_ptr<PragueSession> session;
  PragueConfig config;

  bool EnsureSession() {
    if (!indexes) {
      std::cout << "! run 'index' first\n";
      return false;
    }
    if (!session) {
      session = std::make_unique<PragueSession>(
          DatabaseSnapshot::Borrow(&db, indexes.get()), config);
    }
    return true;
  }

  void PrintReport(const StepReport& r) {
    std::cout << "  status=" << StatusName(r.status)
              << " |Rq|=" << r.exact_candidates;
    if (r.similarity_mode) {
      std::cout << " Rfree=" << r.free_candidates
                << " Rver=" << r.ver_candidates;
    }
    std::cout << " (engine " << (r.spig_seconds + r.candidate_seconds) * 1000
              << " ms)\n";
  }

  bool Handle(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd) || cmd[0] == '#') return true;
    if (cmd == "quit" || cmd == "exit") return false;

    if (cmd == "load") {
      std::string path;
      in >> path;
      Result<GraphDatabase> loaded = ReadDatabaseFromFile(path);
      if (!loaded.ok()) {
        std::cout << "! " << loaded.status().ToString() << "\n";
        return true;
      }
      db = std::move(*loaded);
      indexes.reset();
      session.reset();
      std::cout << "loaded " << db.size() << " graphs\n";
    } else if (cmd == "gen") {
      std::string kind;
      size_t n = 1000;
      in >> kind >> n;
      if (kind == "synth") {
        SyntheticGeneratorConfig gen;
        gen.graph_count = n;
        db = GenerateSyntheticDatabase(gen);
      } else {
        AidsGeneratorConfig gen;
        gen.graph_count = n;
        db = GenerateAidsLikeDatabase(gen);
      }
      indexes.reset();
      session.reset();
      std::cout << "generated " << db.size() << " graphs; labels:";
      for (const std::string& name : db.labels().SortedNames()) {
        std::cout << " " << name;
      }
      std::cout << "\n";
    } else if (cmd == "index") {
      if (db.empty()) {
        std::cout << "! no database loaded\n";
        return true;
      }
      MiningConfig mining;
      A2fConfig a2f;
      double alpha = 0.1;
      size_t beta = 4;
      in >> alpha >> beta;
      mining.min_support_ratio = alpha;
      mining.max_fragment_edges = 8;
      a2f.beta = beta;
      Result<ActionAwareIndexes> built =
          BuildActionAwareIndexes(db, mining, a2f);
      if (!built.ok()) {
        std::cout << "! " << built.status().ToString() << "\n";
        return true;
      }
      indexes = std::make_unique<ActionAwareIndexes>(std::move(*built));
      session.reset();
      std::cout << "A2F: " << indexes->a2f.VertexCount()
                << " fragments, A2I: " << indexes->a2i.EntryCount()
                << " DIFs, size " << HumanBytes(indexes->StorageBytes())
                << "\n";
    } else if (cmd == "node") {
      if (!EnsureSession()) return true;
      std::string label;
      in >> label;
      Result<NodeId> id = session->AddNodeByName(label);
      if (!id.ok()) {
        std::cout << "! " << id.status().ToString() << "\n";
      } else {
        std::cout << "node " << *id << " (" << label << ")\n";
      }
    } else if (cmd == "edge") {
      if (!EnsureSession()) return true;
      NodeId u, v;
      if (!(in >> u >> v)) {
        std::cout << "! usage: edge <u> <v>\n";
        return true;
      }
      Result<StepReport> report = session->AddEdge(u, v);
      if (!report.ok()) {
        std::cout << "! " << report.status().ToString() << "\n";
      } else {
        std::cout << "e" << report->edge << " drawn\n";
        PrintReport(*report);
      }
    } else if (cmd == "pattern") {
      if (!EnsureSession()) return true;
      std::string rest;
      std::getline(in, rest);
      Result<ParsedPattern> p = ParsePatternStrict(rest, db.labels());
      if (!p.ok()) {
        std::cout << "! " << p.status().ToString() << "\n";
        return true;
      }
      std::vector<NodeId> ids;
      for (NodeId n = 0; n < p->graph.NodeCount(); ++n) {
        ids.push_back(session->AddNode(p->graph.NodeLabel(n)));
      }
      for (EdgeId e : p->sequence) {
        const Edge& edge = p->graph.GetEdge(e);
        Result<StepReport> report =
            session->AddEdge(ids[edge.u], ids[edge.v], edge.label);
        if (!report.ok()) {
          std::cout << "! " << report.status().ToString() << "\n";
          return true;
        }
        std::cout << "e" << report->edge << " drawn\n";
        PrintReport(*report);
      }
    } else if (cmd == "delete") {
      if (!EnsureSession()) return true;
      int ell;
      if (!(in >> ell)) {
        std::cout << "! usage: delete <ell>\n";
        return true;
      }
      Result<StepReport> report = session->DeleteEdge(ell);
      if (!report.ok()) {
        std::cout << "! " << report.status().ToString() << "\n";
      } else {
        std::cout << "e" << ell << " deleted\n";
        PrintReport(*report);
      }
    } else if (cmd == "suggest") {
      if (!EnsureSession()) return true;
      auto suggestion = session->SuggestDeletion();
      if (!suggestion) {
        std::cout << "no helpful deletion found\n";
      } else {
        std::cout << "suggest deleting e" << suggestion->edge << " -> "
                  << suggestion->candidates.size() << " candidates\n";
      }
    } else if (cmd == "sim") {
      if (!EnsureSession()) return true;
      Result<StepReport> report = session->EnableSimilarity();
      if (!report.ok()) {
        std::cout << "! " << report.status().ToString() << "\n";
      } else {
        PrintReport(*report);
      }
    } else if (cmd == "sigma") {
      int k;
      if (in >> k) config.sigma = k;
      if (session) std::cout << "(applies to the next 'reset')\n";
    } else if (cmd == "status") {
      if (!EnsureSession()) return true;
      std::cout << "|q|=" << session->query().EdgeCount()
                << " simFlag=" << (session->similarity_mode() ? "on" : "off")
                << " |Rq|=" << session->exact_candidates().size()
                << " SPIG vertices=" << session->spigs().TotalVertexCount()
                << "\n";
    } else if (cmd == "run") {
      if (!EnsureSession()) return true;
      RunStats stats;
      Result<QueryResults> results = session->Run(&stats);
      if (!results.ok()) {
        std::cout << "! " << results.status().ToString() << "\n";
        return true;
      }
      std::cout << "SRT " << stats.srt_seconds * 1000 << " ms\n";
      if (!results->similarity) {
        std::cout << results->exact.size() << " exact matches:";
        size_t shown = 0;
        for (GraphId gid : results->exact) {
          if (++shown > 20) {
            std::cout << " ...";
            break;
          }
          std::cout << " g" << gid;
        }
        std::cout << "\n";
      } else {
        std::cout << results->similar.size() << " approximate matches:\n";
        size_t shown = 0;
        for (const SimilarMatch& m : results->similar) {
          if (++shown > 20) {
            std::cout << "  ...\n";
            break;
          }
          std::cout << "  g" << m.gid << " distance=" << m.distance << "\n";
        }
      }
    } else if (cmd == "reset") {
      session.reset();
      std::cout << "new query canvas\n";
    } else {
      std::cout << "! unknown command: " << cmd << "\n";
    }
    return true;
  }
};

}  // namespace

int main() {
  Repl repl;
  std::string line;
  std::cout << "PRAGUE interactive session. Type commands ('quit' to exit).\n";
  while (std::getline(std::cin, line)) {
    if (!repl.Handle(line)) break;
  }
  return 0;
}
