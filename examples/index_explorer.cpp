// Index explorer: inspect what the offline mining step produces.
//
// Generates (or loads) a database, mines it, builds the action-aware
// indexes, prints their anatomy (MF/DF split, clusters, delId compression
// ratio, top fragments by support), and demonstrates the disk round-trip
// the paper's DF-index relies on.
//
// Usage: ./build/examples/index_explorer [aids|synth] [graph_count] [alpha]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "datasets/aids_generator.h"
#include "datasets/synthetic_generator.h"
#include "graph/graph_io.h"
#include "index/action_aware_index.h"
#include "index/index_io.h"
#include "util/bytes.h"
#include "util/stopwatch.h"

using namespace prague;

namespace {

// Renders a fragment as "C-C, C-S, ..." using the label dictionary.
std::string Pretty(const Graph& g, const LabelDictionary& labels) {
  std::string out;
  for (const Edge& e : g.edges()) {
    if (!out.empty()) out += ", ";
    out += labels.Name(g.NodeLabel(e.u)) + "-" + labels.Name(g.NodeLabel(e.v));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string kind = argc > 1 ? argv[1] : "aids";
  size_t graph_count = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 2000;
  double alpha = argc > 3 ? std::strtod(argv[3], nullptr) : 0.1;

  GraphDatabase db;
  if (kind == "synth") {
    SyntheticGeneratorConfig gen;
    gen.graph_count = graph_count;
    db = GenerateSyntheticDatabase(gen);
  } else {
    AidsGeneratorConfig gen;
    gen.graph_count = graph_count;
    db = GenerateAidsLikeDatabase(gen);
  }
  std::printf("database: %zu graphs (%s), avg %.1f nodes / %.1f edges, %s\n",
              db.size(), kind.c_str(), db.AverageNodeCount(),
              db.AverageEdgeCount(), HumanBytes(db.ByteSize()).c_str());

  MiningConfig mining;
  mining.min_support_ratio = alpha;
  mining.max_fragment_edges = 8;
  Stopwatch mine_timer;
  Result<MiningResult> mined = MineFragments(db, mining);
  if (!mined.ok()) {
    std::fprintf(stderr, "%s\n", mined.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\nmining (alpha=%.2f, min support %zu): %.2fs\n"
      "  frequent fragments: %zu   DIFs: %zu\n"
      "  infrequent candidates examined: %zu, duplicate growth paths "
      "pruned: %zu\n",
      alpha, mined->min_support, mined->stats.elapsed_seconds,
      mined->frequent.size(), mined->difs.size(),
      mined->stats.infrequent_candidates, mined->stats.pruned_non_minimal);

  // Frequent fragments by size histogram.
  std::vector<size_t> by_size(mining.max_fragment_edges + 1, 0);
  for (const MinedFragment& f : mined->frequent) ++by_size[f.size()];
  std::printf("  size histogram:");
  for (size_t k = 1; k < by_size.size(); ++k) {
    if (by_size[k]) std::printf(" %zu:%zu", k, by_size[k]);
  }
  std::printf("\n");

  // Top-5 fragments by support.
  std::vector<const MinedFragment*> top;
  for (const MinedFragment& f : mined->frequent) top.push_back(&f);
  std::sort(top.begin(), top.end(),
            [](const MinedFragment* a, const MinedFragment* b) {
              return a->support() > b->support();
            });
  std::printf("  top fragments by support:\n");
  for (size_t i = 0; i < std::min<size_t>(5, top.size()); ++i) {
    std::printf("    sup=%-6zu %s\n", top[i]->support(),
                Pretty(top[i]->graph, db.labels()).c_str());
  }
  if (!mined->difs.empty()) {
    std::printf("  sample DIFs (smallest infrequent fragments):\n");
    for (size_t i = 0; i < std::min<size_t>(5, mined->difs.size()); ++i) {
      std::printf("    sup=%-6zu %s\n", mined->difs[i].support(),
                  Pretty(mined->difs[i].graph, db.labels()).c_str());
    }
  }

  A2fConfig a2f_config;
  a2f_config.beta = 4;
  ActionAwareIndexes indexes = BuildActionAwareIndexes(*mined, a2f_config);
  const A2FIndex& a2f = indexes.a2f;
  std::printf(
      "\nA2F index (beta=%zu):\n"
      "  MF-index (size<=beta): %zu vertices; DF-index: %zu vertices in %zu "
      "clusters\n"
      "  storage %s compressed (delIds) vs %s uncompressed — %.1f%% saved\n",
      a2f.beta(), a2f.MfVertexCount(), a2f.DfVertexCount(),
      a2f.clusters().size(), HumanBytes(a2f.StorageBytes()).c_str(),
      HumanBytes(a2f.UncompressedBytes()).c_str(),
      100.0 * (1.0 - static_cast<double>(a2f.StorageBytes()) /
                         static_cast<double>(a2f.UncompressedBytes())));
  std::printf("A2I index: %zu DIF entries, %s\n", indexes.a2i.EntryCount(),
              HumanBytes(indexes.a2i.StorageBytes()).c_str());

  // Disk round-trip.
  std::string path = "/tmp/prague_index_explorer.idx";
  Stopwatch save_timer;
  if (Status st = IndexSerializer::SaveToFile(indexes, path); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  double save_s = save_timer.ElapsedSeconds();
  Stopwatch load_timer;
  Result<ActionAwareIndexes> loaded = IndexSerializer::LoadFromFile(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\ndisk round-trip: saved in %.2fs, loaded in %.2fs, %zu vertices "
      "reconstructed from delIds\n",
      save_s, load_timer.ElapsedSeconds(), loaded->a2f.VertexCount());
  std::remove(path.c_str());
  return 0;
}
