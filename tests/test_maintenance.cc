// Incremental index maintenance: appended graphs must yield exactly the
// id sets a from-scratch rebuild would, delIds must stay consistent, and
// drift detection must fire when classifications move.

#include <gtest/gtest.h>

#include "datasets/aids_generator.h"
#include "graph/vf2.h"
#include "core/prague_session.h"
#include "index/index_maintenance.h"
#include "test_fixtures.h"
#include "test_storage_util.h"

namespace prague {
namespace {

using testing::kC;
using testing::kN;
using testing::kO;
using testing::kS;

// A fresh copy of the tiny fixture's db + indexes (maintenance mutates).
struct MutableFixture {
  GraphDatabase db;
  ActionAwareIndexes indexes;
  double alpha;
};

MutableFixture FreshTiny() {
  MutableFixture f;
  f.db = testing::TinyDatabase();
  f.alpha = 0.34;
  MiningConfig mining;
  mining.min_support_ratio = f.alpha;
  mining.max_fragment_edges = 6;
  A2fConfig a2f;
  a2f.beta = 2;
  Result<MiningResult> mined = MineFragments(f.db, mining);
  if (!mined.ok()) std::abort();
  f.indexes = BuildActionAwareIndexes(*mined, a2f);
  return f;
}

TEST(MaintenanceTest, RejectsBadInput) {
  MutableFixture f = FreshTiny();
  EXPECT_FALSE(AppendGraphs(&f.db, {Graph()}, &f.indexes, f.alpha).ok());
  EXPECT_FALSE(AppendGraphs(&f.db, {}, &f.indexes, 0.0).ok());
  // Disconnected graph rejected.
  GraphBuilder b;
  b.AddNode(kC);
  b.AddNode(kC);
  b.AddNode(kC);
  (void)b.AddEdge(0, 1);
  Graph disconnected = std::move(b).Build();
  EXPECT_FALSE(
      AppendGraphs(&f.db, {disconnected}, &f.indexes, f.alpha).ok());
}

TEST(MaintenanceTest, UpdatedIdSetsAreExact) {
  MutableFixture f = FreshTiny();
  // Append two new graphs: a copy of g0's shape and a novel N-rich graph.
  std::vector<Graph> extra;
  extra.push_back(testing::MakeGraph({kC, kC, kC, kS},
                                     {{0, 1}, {1, 2}, {0, 2}, {0, 3}}));
  extra.push_back(testing::MakeGraph({kN, kC, kN}, {{0, 1}, {1, 2}}));
  Result<MaintenanceReport> report =
      AppendGraphs(&f.db, extra, &f.indexes, f.alpha);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->graphs_added, 2u);
  EXPECT_EQ(f.db.size(), 8u);

  // Every indexed fragment's id set must equal a direct VF2 scan over the
  // extended database.
  for (A2fId id = 0; id < f.indexes.a2f.VertexCount(); ++id) {
    const A2fVertex& v = f.indexes.a2f.vertex(id);
    for (GraphId gid = 0; gid < f.db.size(); ++gid) {
      EXPECT_EQ(v.fsg_ids.Contains(gid),
                IsSubgraphIsomorphic(v.fragment, f.db.graph(gid)))
          << "A2F " << id << " g" << gid;
    }
  }
  for (A2iId d = 0; d < f.indexes.a2i.EntryCount(); ++d) {
    const A2iEntry& e = f.indexes.a2i.entry(d);
    for (GraphId gid = 0; gid < f.db.size(); ++gid) {
      EXPECT_EQ(e.fsg_ids.Contains(gid),
                IsSubgraphIsomorphic(e.fragment, f.db.graph(gid)))
          << "A2I " << d << " g" << gid;
    }
  }
}

TEST(MaintenanceTest, DelIdsStayConsistent) {
  MutableFixture f = FreshTiny();
  std::vector<Graph> extra = {
      testing::MakeGraph({kC, kS, kC}, {{0, 1}, {1, 2}})};
  ASSERT_TRUE(AppendGraphs(&f.db, extra, &f.indexes, f.alpha).ok());
  // Reconstructing from delIds must reproduce the updated full sets.
  A2FIndex copy = f.indexes.a2f;
  ASSERT_TRUE(copy.ReconstructFromDelIds());
  for (A2fId id = 0; id < copy.VertexCount(); ++id) {
    EXPECT_EQ(copy.FsgIds(id), f.indexes.a2f.FsgIds(id)) << id;
  }
}

TEST(MaintenanceTest, PruningSkipsProbesWithoutChangingResults) {
  MutableFixture f = FreshTiny();
  // A graph sharing nothing with the database beyond rare labels: most
  // fragment probes should be pruned by absent parents.
  std::vector<Graph> extra = {
      testing::MakeGraph({kN, kN, kN}, {{0, 1}, {1, 2}})};
  Result<MaintenanceReport> report =
      AppendGraphs(&f.db, extra, &f.indexes, f.alpha);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->pruned_probes, 0u);
}

TEST(MaintenanceTest, DriftDetectionFires) {
  MutableFixture f = FreshTiny();
  // Keep appending N-C-N graphs: the C-N DIF's support climbs while the
  // threshold moves; eventually some classification drifts.
  bool drifted = false;
  for (int round = 0; round < 6 && !drifted; ++round) {
    std::vector<Graph> extra = {
        testing::MakeGraph({kN, kC, kN}, {{0, 1}, {1, 2}})};
    Result<MaintenanceReport> report =
        AppendGraphs(&f.db, extra, &f.indexes, f.alpha);
    ASSERT_TRUE(report.ok());
    drifted = report->remine_recommended;
  }
  EXPECT_TRUE(drifted);
}

TEST(MaintenanceTest, SessionsStaySoundAfterMaintenance) {
  MutableFixture f = FreshTiny();
  std::vector<Graph> extra;
  extra.push_back(testing::MakeGraph({kC, kC, kC, kS},
                                     {{0, 1}, {1, 2}, {0, 2}, {0, 3}}));
  extra.push_back(testing::MakeGraph({kC, kS, kO}, {{0, 1}, {1, 2}}));
  ASSERT_TRUE(AppendGraphs(&f.db, extra, &f.indexes, f.alpha).ok());

  // Deliberately a fresh borrow, not a shared fixture snapshot: f was
  // mutated in place above, so the session must pin the post-append state.
  PragueSession session(DatabaseSnapshot::Borrow(&f.db, &f.indexes));
  Graph q = testing::MakeGraph({kC, kC, kC, kS},
                               {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  std::vector<NodeId> node_map(q.NodeCount(), kInvalidNode);
  for (EdgeId e = 0; e < q.EdgeCount(); ++e) {
    const Edge& edge = q.GetEdge(e);
    for (NodeId n : {edge.u, edge.v}) {
      if (node_map[n] == kInvalidNode) {
        node_map[n] = session.AddNode(q.NodeLabel(n));
      }
    }
    ASSERT_TRUE(session.AddEdge(node_map[edge.u], node_map[edge.v]).ok());
  }
  Result<QueryResults> results = session.Run(nullptr);
  ASSERT_TRUE(results.ok());
  // The appended g0-copy (id 6) must be found alongside the original g0.
  std::vector<GraphId> expected;
  for (GraphId gid = 0; gid < f.db.size(); ++gid) {
    if (IsSubgraphIsomorphic(q, f.db.graph(gid))) expected.push_back(gid);
  }
  EXPECT_EQ(results->exact, expected);
  EXPECT_TRUE(IdSet(results->exact).Contains(6));
}

TEST(MaintenanceTest, MatchesRebuiltIndexOnSharedFragments) {
  // Incremental update vs full rebuild at the extended database: id sets
  // of fragments indexed by both must agree exactly.
  MutableFixture f = FreshTiny();
  AidsGeneratorConfig gen;
  gen.graph_count = 4;
  gen.seed = 5;
  GraphDatabase more = GenerateAidsLikeDatabase(gen);
  std::vector<Graph> extra;
  for (GraphId gid = 0; gid < more.size(); ++gid) {
    // Re-intern labels: the tiny db uses C/S/O/N; map by name.
    GraphBuilder b;
    const Graph& g = more.graph(gid);
    bool ok = true;
    for (NodeId n = 0; n < g.NodeCount(); ++n) {
      Result<Label> l =
          f.db.labels().Lookup(more.labels().Name(g.NodeLabel(n)));
      if (!l.ok()) {
        ok = false;
        break;
      }
      b.AddNode(*l);
    }
    if (!ok) continue;  // molecule uses an atom the tiny db lacks
    for (const Edge& e : g.edges()) (void)b.AddEdge(e.u, e.v, e.label);
    extra.push_back(std::move(b).Build());
  }
  if (extra.empty()) GTEST_SKIP() << "no label-compatible molecules";
  ASSERT_TRUE(AppendGraphs(&f.db, extra, &f.indexes, f.alpha).ok());

  MiningConfig mining;
  mining.min_support_ratio = 0.2;  // low enough to cover old fragments
  mining.max_fragment_edges = 6;
  Result<MiningResult> remined = MineFragments(f.db, mining);
  ASSERT_TRUE(remined.ok());
  size_t compared = 0;
  for (const MinedFragment& frag : remined->frequent) {
    std::optional<A2fId> id = f.indexes.a2f.Lookup(frag.code);
    if (!id) continue;
    EXPECT_EQ(f.indexes.a2f.FsgIds(*id), frag.fsg_ids) << frag.code;
    ++compared;
  }
  EXPECT_GT(compared, 0u);
}

TEST(MaintenanceTest, ReclassifyMatchesOfflineRemineAcrossSigmaCrossings) {
  // The incremental delta path with reclassification on must land on the
  // same index population as throwing the database away and re-mining from
  // scratch at every step — including steps where σ = ⌈α·N⌉ moves and
  // fragments cross it in both directions. Vertex numbering legitimately
  // differs between the two constructions, so the comparison is code-keyed
  // (same fragments, same exact id sets, same MF/DF split).
  SnapshotPtr snapshot = testing::MakeTinySnapshot();
  for (uint64_t v = 1; v <= 8; ++v) {
    Result<SnapshotAppendResult> next =
        AppendGraphs(*snapshot, testing::BatchForVersion(v),
                     testing::StorageMaintenanceOptions());
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    snapshot = next->snapshot;

    MiningConfig mining;
    mining.min_support_ratio = testing::kStorageAlpha;
    mining.max_fragment_edges = testing::kStorageMaxEdges;
    A2fConfig a2f;
    a2f.beta = testing::kStorageBeta;
    Result<MiningResult> mined = MineFragments(snapshot->db(), mining);
    ASSERT_TRUE(mined.ok()) << mined.status().ToString();
    ActionAwareIndexes offline = BuildActionAwareIndexes(*mined, a2f);
    testing::ExpectIndexesEquivalent(snapshot->indexes(), offline);
    if (::testing::Test::HasFailure()) {
      FAIL() << "diverged from the offline re-mine at version " << v;
    }
  }
}

}  // namespace
}  // namespace prague
