// ThreadPool and parallel-verification correctness: parallel results must
// be byte-identical to sequential ones.

#include <gtest/gtest.h>

#include <atomic>
#include <map>

#include "core/prague_session.h"
#include "core/results.h"
#include "datasets/query_workload.h"
#include "test_fixtures.h"
#include "util/thread_pool.h"

namespace prague {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { ++counter; });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  pool.ParallelFor(1000, 8, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ++touched[i];
  });
  for (size_t i = 0; i < touched.size(); ++i) {
    EXPECT_EQ(touched[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, ParallelForSmallRangeRunsInline) {
  ThreadPool pool(4);
  std::vector<int> touched(5, 0);
  pool.ParallelFor(5, 16, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ++touched[i];
  });
  for (int t : touched) EXPECT_EQ(t, 1);
}

TEST(ThreadPoolTest, AtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ParallelVerificationTest, ExactVerificationMatchesSequential) {
  const auto& fixture = testing::AidsFixture::Get();
  WorkloadGenerator workload(&fixture.db, 77);
  Result<VisualQuerySpec> spec = workload.ContainmentQuery(5, "pv");
  ASSERT_TRUE(spec.ok());
  IdSet all = fixture.db.AllIds();
  ThreadPool pool(4);
  std::vector<GraphId> sequential =
      ExactVerification(spec->graph, all, fixture.db);
  std::vector<GraphId> parallel =
      ExactVerification(spec->graph, all, fixture.db, &pool);
  EXPECT_EQ(sequential, parallel);
  EXPECT_FALSE(sequential.empty());
}

void Feed(PragueSession* session, const Graph& q,
          const std::vector<EdgeId>& sequence) {
  std::map<NodeId, NodeId> node_map;
  auto user_node = [&](NodeId n) {
    auto it = node_map.find(n);
    if (it != node_map.end()) return it->second;
    NodeId u = session->AddNode(q.NodeLabel(n));
    node_map.emplace(n, u);
    return u;
  };
  for (EdgeId e : sequence) {
    const Edge& edge = q.GetEdge(e);
    if (!session->AddEdge(user_node(edge.u), user_node(edge.v), edge.label)
             .ok()) {
      std::abort();
    }
  }
}

class ParallelRunTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelRunTest, SimilarityResultsIdenticalAcrossThreadCounts) {
  const auto& fixture = testing::AidsFixture::Get();
  WorkloadGenerator workload(&fixture.db, 700 + GetParam());
  Result<VisualQuerySpec> spec = workload.SimilarityQuery(6, 2, "p");
  ASSERT_TRUE(spec.ok());
  auto run = [&](size_t threads) {
    PragueConfig config;
    config.sigma = 3;
    config.verification_threads = threads;
    PragueSession session(&fixture.db, &fixture.indexes, config);
    Feed(&session, spec->graph, spec->sequence);
    Result<QueryResults> results = session.Run(nullptr);
    if (!results.ok()) std::abort();
    return *results;
  };
  QueryResults one = run(1);
  QueryResults four = run(4);
  EXPECT_EQ(one.similarity, four.similarity);
  EXPECT_EQ(one.exact, four.exact);
  ASSERT_EQ(one.similar.size(), four.similar.size());
  for (size_t i = 0; i < one.similar.size(); ++i) {
    EXPECT_EQ(one.similar[i], four.similar[i]) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelRunTest,
                         ::testing::Range<uint64_t>(0, 6));

}  // namespace
}  // namespace prague
