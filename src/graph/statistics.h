// Database statistics: the profile numbers the paper quotes about its
// datasets (average/max sizes, label distribution) plus degree and cycle
// structure — used by `praguedb stats`, the examples, and to validate
// that generated datasets match the real datasets' published shape.

#ifndef PRAGUE_GRAPH_STATISTICS_H_
#define PRAGUE_GRAPH_STATISTICS_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "graph/graph_database.h"

namespace prague {

/// \brief Aggregate profile of a graph database.
struct DatabaseStatistics {
  size_t graph_count = 0;
  size_t total_nodes = 0;
  size_t total_edges = 0;
  double avg_nodes = 0;
  double avg_edges = 0;
  size_t max_nodes = 0;
  size_t max_edges = 0;
  double avg_degree = 0;
  size_t max_degree = 0;
  /// Independent cycles per graph, averaged: |E| − |V| + 1 (connected).
  double avg_cyclomatic = 0;
  /// Node label → occurrence count, descending by count.
  std::vector<std::pair<Label, size_t>> label_counts;
  /// Distinct edge label count (1 when unlabeled).
  size_t edge_label_count = 0;
  /// Distinct (min,max) node-label pairs seen on edges.
  size_t present_label_pairs = 0;

  /// \brief Multi-line human-readable report using \p labels for names.
  std::string ToString(const LabelDictionary& labels) const;
};

/// \brief Computes the profile of \p db.
DatabaseStatistics ComputeStatistics(const GraphDatabase& db);

}  // namespace prague

#endif  // PRAGUE_GRAPH_STATISTICS_H_
