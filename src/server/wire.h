// Wire protocol for the PRAGUE network service (docs/ARCHITECTURE.md,
// "Wire protocol & server").
//
// Transport: length-prefixed frames — the 5-byte header of util/bytes
// (u32 LE payload length + u8 frame type) followed by the payload. Two
// frame types exist: requests ('Q') and responses ('R'). Payloads are
// single-line text, which keeps the protocol greppable in a packet dump
// while the framing keeps parsing trivial and DoS-bounded.
//
// Session lifecycle, one connection = one ManagedSession:
//
//   OPEN [timeout_ms] [tenant=<name>]
//                               -> OK session=<id> version=<v>
//   ADD_EDGE u lu v lv [le]     -> OK edge=<l> status=<s> sim=<0|1>
//                                  rq=<n> free=<n> ver=<n>
//   DELETE_EDGE u v             -> same reply shape as ADD_EDGE
//   RUN [k]                     -> OK mode=<exact|similar> n=<total>
//                                  truncated=<0|1> phase=<p>
//                                  srt_ms=<t> ids=<...>
//   BATCH_RUN n [k]\n<p1>\n...  -> OK batch n=<n>\n<member reply lines>
//   CANCEL [id]                 -> (no reply — see below)
//   APPEND n [alpha=<a>] [reclassify=<0|1>]\n<g1>\n...
//                               -> OK version=<v> added=<n> sigma=<s>
//                                  reclassified=<0|1> promoted=<n>
//                                  demoted=<n> discovered=<n>
//   STATS                       -> OK version=<v> open=<n> opened=<n>
//                                  published=<n> runs=<n> truncated=<n>
//                                  shards=<n> shed=<n> tenants=<n>
//                                  [wal_bytes=<n> last_checkpoint=<v>]
//                                  sessions=<id>@<ver>,...
//   METRICS                     -> OK metrics\n<Prometheus text>
//   CLOSE                       -> OK bye
//
// `u`/`v` are client-chosen node handles; `lu`/`lv` are node label *names*
// (Panel 2 of the GUI only offers dictionary names, so the server resolves
// them with AddNodeByName and a typo comes back as a typed NotFound).
// `le` is a numeric edge label (default 0). `RUN k` caps how many matches
// are listed in the reply; `n` is always the full count. Errors come back
// as `ERR <CODE> <message>` and decode to the same Status the server saw.
//
// Admission control and load shedding. OPEN's optional `tenant=<name>`
// token groups connections into a *tenant* for per-tenant quotas and
// rate limits (core/admission.h); without it every connection is its own
// tenant. When a request is shed — the tenant is over quota or the server
// is saturated — the reply is `BUSY <retry-after-ms>` (with the usual
// `#<id>` echo when the request carried one), not an ERR: shedding is
// flow control, not failure. It decodes to Status::Busy, and the
// retry-after hint tells a polite client how long to back off before the
// request is likely to be admitted. A shed request consumes no pool slot
// and queues nothing.
//
// Request ids and pipelining. Any request payload may start with an
// optional `#<id>` token (id >= 1, client-chosen, unique among that
// connection's in-flight requests): `#7 RUN 10`. The reply to an
// id-carrying request echoes the same prefix (`#7 OK mode=...`,
// `#7 ERR ...`); id-less requests get id-less replies, byte-identical to
// the pre-id protocol. Ids exist so RUN/BATCH_RUN can be *pipelined*:
// a connection may have several id-carrying runs in flight at once, their
// replies return in completion order (not send order), and the id is what
// lets the client pair them up again. Everything else stays lock-step:
// while any run is in flight, only CANCEL and further id-carrying
// RUN/BATCH_RUN frames are accepted; other commands are rejected with
// FailedPrecondition exactly as before.
//
// BATCH_RUN amortizes framing and session dispatch across a burst of
// queries. Its payload is multi-line: the first line is the command
// (`BATCH_RUN <n> [k]`), followed by exactly n lines, each one visual
// query in the textual pattern syntax of query/pattern_parser.h. Each
// member is formulated and run on a fresh engine session pinned to the
// connection session's snapshot and config; the reply carries one line
// per member — a standard RUN reply payload, or an ERR payload for
// members that failed to parse/formulate. Members run under the session's
// run budget individually; a CANCEL lands on the member in flight and
// fails the rest fast, so a batch never outlives a cancellation by more
// than one member.
//
// APPEND is the durable mutation verb: each of the n lines after the
// command line is one data graph in the textual pattern syntax of
// query/pattern_parser.h (new label names are allowed — they are interned
// into the published successor's dictionary). The whole batch is one
// atomic append: one WAL record, one successor snapshot, one version.
// The reply is sent only after the record is durable (when the server
// runs with a data directory and fsync on), so an acknowledged APPEND
// survives a crash. `alpha=` overrides the server's mining ratio for the
// σ-recomputation; `reclassify=` overrides whether σ-crossings are
// repaired in place (the server default) or merely detected. Sessions
// opened before the append keep their pinned snapshot; the new version is
// visible to sessions opened afterwards — STATS shows both.
//
// STATS on a durable server also reports `wal_bytes=` (WAL growth since
// the last checkpoint) and `last_checkpoint=` (the segment's version);
// both tokens are absent on an in-memory server and parsers tolerate
// that, so legacy payloads still parse.
//
// CANCEL is the one intentionally asymmetric command: it is fire-and-
// forget, carries no reply, and may be sent while a RUN is in flight on
// the same connection — that is its whole purpose. The in-flight RUN then
// returns early with truncated=1. `CANCEL <id>` cancels only the run with
// that request id (whether active or still queued); bare CANCEL cancels
// everything in flight on the connection. Because CANCEL never occupies
// the reply stream, a client thread can issue it while another thread is
// blocked waiting for a RUN reply without the two ever racing on a read.

#ifndef PRAGUE_SERVER_WIRE_H_
#define PRAGUE_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/prague_session.h"
#include "core/results.h"
#include "core/session_manager.h"
#include "util/bytes.h"
#include "util/result.h"
#include "util/status.h"

namespace prague {

/// Frame types carried in FrameHeader::type.
enum class FrameType : uint8_t {
  kRequest = 0x51,   // 'Q'
  kResponse = 0x52,  // 'R'
};

/// \brief One decoded frame.
struct WireFrame {
  FrameType type = FrameType::kRequest;
  std::string payload;
};

/// \brief Writes one frame to \p fd (blocking, handles short writes).
Status SendFrame(int fd, FrameType type, std::string_view payload);

/// \brief Reads one frame from \p fd (blocking). A clean close at a frame
/// boundary returns IOError "connection closed" (see IsConnectionClosed);
/// EOF mid-frame, an unknown frame type, or an oversized length return
/// Corruption.
Result<WireFrame> RecvFrame(int fd);

/// \brief True for the Status RecvFrame returns on an orderly peer close.
bool IsConnectionClosed(const Status& status);

/// The request verbs.
enum class CommandKind {
  kOpen,
  kAddEdge,
  kDeleteEdge,
  kRun,
  kBatchRun,
  kCancel,
  kAppend,
  kStats,
  kMetrics,
  kClose,
};

/// Upper bound on BATCH_RUN members; a batch is one frame, so this caps
/// how much parse/formulate work a single frame can demand.
inline constexpr size_t kMaxBatchPatterns = 256;

/// \brief One parsed request payload.
struct WireCommand {
  CommandKind kind = CommandKind::kClose;
  /// Optional `#<id>` frame prefix; 0 = absent (lock-step request).
  uint64_t request_id = 0;
  int64_t timeout_ms = -1;  ///< OPEN: Run() budget; -1 = server default.
  std::string tenant;       ///< OPEN: admission group; "" = per-connection.
  uint32_t u = 0;           ///< ADD_EDGE / DELETE_EDGE node handle
  uint32_t v = 0;           ///< ADD_EDGE / DELETE_EDGE node handle
  std::string u_label;      ///< ADD_EDGE label name of u
  std::string v_label;      ///< ADD_EDGE label name of v
  Label edge_label = 0;     ///< ADD_EDGE edge label
  uint64_t limit = 0;       ///< RUN / BATCH_RUN: max matches listed; 0 = all
  uint64_t cancel_id = 0;   ///< CANCEL: run to cancel; 0 = all in flight
  /// BATCH_RUN / APPEND: one pattern text (query/pattern_parser.h) per
  /// member (queries for BATCH_RUN, data graphs for APPEND).
  std::vector<std::string> batch_patterns;
  double append_alpha = -1;   ///< APPEND: mining ratio; < 0 = server default
  int append_reclassify = -1; ///< APPEND: 0/1 override; -1 = server default
};

/// \brief Splits the optional `#<id>` prefix off a request or reply
/// payload. Returns {id, rest} with id = 0 when there is no prefix; a
/// present-but-malformed id (`#`, `#0`, `#12x`) is InvalidArgument.
Result<std::pair<uint64_t, std::string_view>> SplitFrameId(
    std::string_view payload);

/// \brief Prepends the `#<id> ` prefix to a payload; returns \p payload
/// unchanged when \p id is 0.
std::string PrependFrameId(uint64_t id, std::string payload);

/// \brief Parses a request payload. Unknown verbs, missing or trailing
/// arguments, and malformed numbers are typed InvalidArgument errors.
Result<WireCommand> ParseCommand(std::string_view payload);

/// \brief Renders \p command as a request payload (client side; inverse
/// of ParseCommand).
std::string FormatCommand(const WireCommand& command);

/// \brief Renders an error reply: "ERR <CODE> <message>".
std::string EncodeErrorReply(const Status& status);

/// \brief Classifies a reply payload: OK replies return OK, "ERR ..."
/// replies decode back to the original code + message, anything else is
/// Corruption.
Status DecodeReplyStatus(std::string_view payload);

/// \brief Stable wire token for a status code (e.g. "NOT_FOUND").
const char* StatusCodeToken(Status::Code code);

/// \brief Renders a load-shed reply: "BUSY <retry-after-ms>". Decodes to
/// Status::Busy via DecodeReplyStatus.
std::string FormatBusyReply(int64_t retry_after_ms);

/// \brief True when \p status is a load-shed (BUSY) reply.
bool IsBusy(const Status& status);

/// \brief Extracts the retry-after hint (milliseconds) from a decoded
/// BUSY status; -1 when the hint is absent or malformed.
int64_t BusyRetryAfterMillis(const Status& status);

/// \brief OPEN reply.
struct OpenReply {
  uint64_t session_id = 0;
  uint64_t version = 0;
};
std::string FormatOpenReply(uint64_t session_id, uint64_t version);
Result<OpenReply> ParseOpenReply(std::string_view payload);

/// \brief ADD_EDGE / DELETE_EDGE reply — the wire image of a StepReport.
struct StepReply {
  int edge = 0;
  FragmentStatus status = FragmentStatus::kFrequent;
  bool similarity_mode = false;
  uint64_t exact_candidates = 0;
  uint64_t free_candidates = 0;
  uint64_t ver_candidates = 0;
};
std::string FormatStepReply(const StepReport& report);
Result<StepReply> ParseStepReply(std::string_view payload);

/// \brief RUN reply. Carries the full result counts plus the (possibly
/// `limit`-capped) match list; `verified` flags of similar matches are not
/// transmitted.
struct RunReply {
  bool similarity = false;
  uint64_t total_matches = 0;
  bool truncated = false;
  std::string deadline_phase = "none";
  double srt_ms = 0;
  std::vector<GraphId> exact;
  std::vector<SimilarMatch> similar;
};
std::string FormatRunReply(const QueryResults& results, const RunStats& stats,
                           uint64_t limit);
Result<RunReply> ParseRunReply(std::string_view payload);

/// \brief BATCH_RUN reply: one entry per member, in request order. A
/// member whose formulation or run failed decodes to its error Status;
/// successful members decode to full RunReplys.
struct BatchRunReply {
  std::vector<Result<RunReply>> members;
};
/// \brief Renders "OK batch n=<n>" plus one member reply payload per line.
/// Each element of \p member_payloads must itself be a RUN reply or ERR
/// payload (single-line).
std::string FormatBatchRunReply(const std::vector<std::string>& member_payloads);
Result<BatchRunReply> ParseBatchRunReply(std::string_view payload);

/// \brief APPEND reply — the wire image of a MaintenanceReport.
struct AppendReply {
  uint64_t version = 0;        ///< snapshot version the append published
  uint64_t added = 0;          ///< graphs appended
  uint64_t min_support = 0;    ///< σ after the append
  bool reclassified = false;   ///< σ-crossings repaired in place
  uint64_t promoted = 0;       ///< DIFs promoted into the A2F
  uint64_t demoted = 0;        ///< A2F vertices demoted out
  uint64_t discovered = 0;     ///< newly frequent fragments found
};
std::string FormatAppendReply(const MaintenanceReport& report);
Result<AppendReply> ParseAppendReply(std::string_view payload);

/// \brief STATS reply — the wire image of SessionManagerStats, including
/// the open sessions and their pinned versions.
struct StatsReply {
  uint64_t current_version = 0;
  uint64_t open_sessions = 0;
  uint64_t sessions_opened = 0;
  uint64_t snapshots_published = 0;
  uint64_t runs_served = 0;     ///< Run() calls completed, all sessions ever
  uint64_t runs_truncated = 0;  ///< of those, cut by a deadline/cancel
  uint64_t shards = 1;          ///< shard count of the server's current view
  uint64_t runs_shed = 0;       ///< runs refused with BUSY by admission
  uint64_t tenants = 0;         ///< tenants the admission controller tracks
  bool durable = false;         ///< wal_bytes=/last_checkpoint= present
  uint64_t wal_bytes = 0;       ///< WAL bytes since the last checkpoint
  uint64_t last_checkpoint_version = 0;  ///< live segment's version
  /// (session id, pinned version), ascending by id.
  std::vector<std::pair<uint64_t, uint64_t>> sessions;
};
std::string FormatStatsReply(const SessionManagerStats& stats);
Result<StatsReply> ParseStatsReply(std::string_view payload);

/// \brief METRICS reply: "OK metrics" on the first line, then the
/// registry's Prometheus text exposition verbatim. The payload is the one
/// multi-line reply in the protocol; the frame length makes that safe.
std::string FormatMetricsReply(const std::string& prometheus_text);
/// \brief Extracts the Prometheus text from a METRICS reply.
Result<std::string> ParseMetricsReply(std::string_view payload);

}  // namespace prague

#endif  // PRAGUE_SERVER_WIRE_H_
