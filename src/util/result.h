// Result<T>: a value or an error Status, RocksDB/Arrow style.

#ifndef PRAGUE_UTIL_RESULT_H_
#define PRAGUE_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace prague {

/// \brief Holds either a successfully produced T or an error Status.
///
/// Accessing the value of an errored Result is a programming error and
/// asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  /// \brief True iff a value is present.
  bool ok() const { return status_.ok(); }
  /// \brief The status; OK when a value is present.
  const Status& status() const { return status_; }

  /// \brief Borrow the value. Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  /// \brief Mutable access to the value. Requires ok().
  T& value() & {
    assert(ok());
    return *value_;
  }
  /// \brief Move the value out. Requires ok().
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// \brief Assigns the value of a Result expression to \p lhs, or returns its
/// error status from the enclosing function.
#define PRAGUE_ASSIGN_OR_RETURN(lhs, expr)        \
  auto PRAGUE_CONCAT_(_res_, __LINE__) = (expr);  \
  if (!PRAGUE_CONCAT_(_res_, __LINE__).ok())      \
    return PRAGUE_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(PRAGUE_CONCAT_(_res_, __LINE__)).value()

#define PRAGUE_CONCAT_(a, b) PRAGUE_CONCAT_IMPL_(a, b)
#define PRAGUE_CONCAT_IMPL_(a, b) a##b

}  // namespace prague

#endif  // PRAGUE_UTIL_RESULT_H_
