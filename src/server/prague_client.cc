#include "server/prague_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace prague {

PragueClient::~PragueClient() { Disconnect(); }

Status PragueClient::Connect(const std::string& host, uint16_t port) {
  if (connected()) {
    return Status::FailedPrecondition("client already connected");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse host '" + host +
                                   "' (use an IPv4 address or 'localhost')");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Status::IOError("connect to " + host + ":" +
                                std::to_string(port) + ": " +
                                std::strerror(errno));
    ::close(fd);
    return st;
  }
  // Commands are tiny; without TCP_NODELAY, Nagle + delayed ACK holds a
  // frame sent right behind another (Run then Cancel) in the kernel for
  // tens of milliseconds.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return Status::OK();
}

void PragueClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status PragueClient::Send(const WireCommand& command) {
  if (!connected()) return Status::FailedPrecondition("not connected");
  std::lock_guard<std::mutex> lock(write_mu_);
  return SendFrame(fd_, FrameType::kRequest, FormatCommand(command));
}

Result<std::string> PragueClient::RoundTrip(const WireCommand& command) {
  PRAGUE_RETURN_NOT_OK(Send(command));
  PRAGUE_ASSIGN_OR_RETURN(WireFrame frame, RecvFrame(fd_));
  if (frame.type != FrameType::kResponse) {
    return Status::Corruption("expected a response frame");
  }
  return std::move(frame.payload);
}

Result<OpenReply> PragueClient::Open(int64_t timeout_ms) {
  WireCommand cmd;
  cmd.kind = CommandKind::kOpen;
  cmd.timeout_ms = timeout_ms;
  PRAGUE_ASSIGN_OR_RETURN(std::string payload, RoundTrip(cmd));
  PRAGUE_ASSIGN_OR_RETURN(OpenReply reply, ParseOpenReply(payload));
  session_id_ = reply.session_id;
  session_version_ = reply.version;
  return reply;
}

Result<StepReply> PragueClient::AddEdge(uint32_t u, const std::string& u_label,
                                        uint32_t v, const std::string& v_label,
                                        Label edge_label) {
  WireCommand cmd;
  cmd.kind = CommandKind::kAddEdge;
  cmd.u = u;
  cmd.u_label = u_label;
  cmd.v = v;
  cmd.v_label = v_label;
  cmd.edge_label = edge_label;
  PRAGUE_ASSIGN_OR_RETURN(std::string payload, RoundTrip(cmd));
  return ParseStepReply(payload);
}

Result<StepReply> PragueClient::DeleteEdge(uint32_t u, uint32_t v) {
  WireCommand cmd;
  cmd.kind = CommandKind::kDeleteEdge;
  cmd.u = u;
  cmd.v = v;
  PRAGUE_ASSIGN_OR_RETURN(std::string payload, RoundTrip(cmd));
  return ParseStepReply(payload);
}

Result<RunReply> PragueClient::Run(uint64_t limit) {
  WireCommand cmd;
  cmd.kind = CommandKind::kRun;
  cmd.limit = limit;
  PRAGUE_ASSIGN_OR_RETURN(std::string payload, RoundTrip(cmd));
  return ParseRunReply(payload);
}

Status PragueClient::Cancel() {
  WireCommand cmd;
  cmd.kind = CommandKind::kCancel;
  return Send(cmd);  // no reply by design — see wire.h
}

Result<StatsReply> PragueClient::Stats() {
  WireCommand cmd;
  cmd.kind = CommandKind::kStats;
  PRAGUE_ASSIGN_OR_RETURN(std::string payload, RoundTrip(cmd));
  return ParseStatsReply(payload);
}

Result<std::string> PragueClient::Metrics() {
  WireCommand cmd;
  cmd.kind = CommandKind::kMetrics;
  PRAGUE_ASSIGN_OR_RETURN(std::string payload, RoundTrip(cmd));
  return ParseMetricsReply(payload);
}

Status PragueClient::Close() {
  WireCommand cmd;
  cmd.kind = CommandKind::kClose;
  Result<std::string> payload = RoundTrip(cmd);
  Disconnect();
  if (!payload.ok()) return payload.status();
  return DecodeReplyStatus(*payload);
}

}  // namespace prague
