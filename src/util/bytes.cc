#include "util/bytes.h"

#include <cstdio>

namespace prague {

std::string HumanBytes(size_t bytes) {
  char buf[32];
  if (bytes >= 1024ULL * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.2f GB",
                  static_cast<double>(bytes) / (1024.0 * 1024 * 1024));
  } else if (bytes >= 1024ULL * 1024) {
    std::snprintf(buf, sizeof(buf), "%.2f MB",
                  static_cast<double>(bytes) / (1024.0 * 1024));
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof(buf), "%.2f KB",
                  static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%zu B", bytes);
  }
  return buf;
}

}  // namespace prague
