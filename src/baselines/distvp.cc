#include "baselines/distvp.h"

#include <algorithm>

#include "graph/subgraph_ops.h"
#include "util/deadline.h"

namespace prague {

DistVpLikeEngine::DistVpLikeEngine(const std::vector<MinedFragment>& frequent,
                                   const GraphDatabase* db, int sigma,
                                   size_t base_feature_edges)
    : db_(db), sigma_(sigma) {
  FeatureIndexConfig config;
  config.max_feature_edges = base_feature_edges + static_cast<size_t>(sigma);
  index_ = FeatureIndex::Build(frequent, config);

  // σ'-relaxed posting lists: for each indexed feature f and σ' = 1..σ,
  // the union of FSG ids over every connected (|f|−σ')-edge subgraph of f
  // (all frequent by anti-monotonicity, hence indexed). Stored
  // uncompressed — the per-σ weight that dominates the real DistVP index.
  relaxed_.resize(index_.FeatureCount());
  for (const MinedFragment& frag : frequent) {
    if (frag.size() > config.max_feature_edges) continue;
    std::optional<uint32_t> fid = index_.Lookup(frag.code);
    if (!fid) continue;
    std::vector<IdSet>& lists = relaxed_[*fid];
    std::vector<std::vector<EdgeMask>> by_size =
        ConnectedEdgeSubsetsBySize(frag.graph);
    for (int s = 1; s <= sigma; ++s) {
      if (frag.size() <= static_cast<size_t>(s)) break;
      size_t level = frag.size() - static_cast<size_t>(s);
      IdSet relaxed;
      for (EdgeMask mask : by_size[level]) {
        Graph sub = ExtractEdgeSubgraph(frag.graph, mask).graph;
        std::optional<uint32_t> sub_id = index_.Lookup(GetCanonicalCode(sub));
        if (sub_id) relaxed.UnionWith(index_.FsgIds(*sub_id));
      }
      lists.push_back(std::move(relaxed));
    }
  }
}

size_t DistVpLikeEngine::RelaxedBytes() const {
  size_t bytes = 0;
  for (const std::vector<IdSet>& lists : relaxed_) {
    for (const IdSet& ids : lists) bytes += ids.size() * sizeof(GraphId);
  }
  return bytes;
}

size_t DistVpLikeEngine::IndexBytes() const {
  return index_.StorageBytes() + RelaxedBytes();
}

IdSet DistVpLikeEngine::Filter(const Graph& q, int sigma,
                               const Deadline& deadline,
                               bool* truncated) const {
  if (sigma >= static_cast<int>(q.EdgeCount())) return db_->AllIds();
  size_t level = q.EdgeCount() - static_cast<size_t>(sigma);
  QuerySubgraphCatalog catalog = QuerySubgraphCatalog::Build(q, q.EdgeCount());
  DeadlineChecker checker(deadline);

  IdSet out;
  for (const QuerySubgraphCatalog::Entry& s : catalog.entries()) {
    if (static_cast<size_t>(s.size) != level) continue;
    if (checker.Check()) {
      // The result is a union over level subgraphs; stopping early would
      // silently drop candidates, so degrade to the sound superset.
      if (truncated != nullptr) *truncated = true;
      return db_->AllIds();
    }
    // Intersect the FSG ids of every indexed feature inside s.
    bool first = true;
    IdSet x;
    for (const QuerySubgraphCatalog::Entry& f : catalog.entries()) {
      if ((f.mask & ~s.mask) != 0) continue;  // not a subset of s
      std::optional<uint32_t> fid = index_.Lookup(f.code);
      if (!fid) continue;
      if (first) {
        x = index_.FsgIds(*fid);
        first = false;
      } else {
        x.IntersectWith(index_.FsgIds(*fid));
      }
      if (x.empty()) break;
    }
    if (first) x = db_->AllIds();  // s has no indexed feature at all
    out.UnionWith(x);
  }
  return out;
}

}  // namespace prague
