// Wall-clock timing utilities used by the SRT meter and benchmarks.

#ifndef PRAGUE_UTIL_STOPWATCH_H_
#define PRAGUE_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace prague {

/// \brief Monotonic stopwatch with microsecond resolution.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// \brief Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// \brief Microseconds elapsed since construction or last Restart().
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  /// \brief Milliseconds elapsed, as a double (for reporting).
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedMicros()) / 1000.0;
  }

  /// \brief Seconds elapsed, as a double (for reporting).
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) / 1e6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace prague

#endif  // PRAGUE_UTIL_STOPWATCH_H_
