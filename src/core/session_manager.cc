#include "core/session_manager.h"

#include <algorithm>
#include <iterator>
#include <string>
#include <thread>

namespace prague {

SessionManager::SessionManager(SnapshotPtr initial,
                               PragueConfig default_config)
    : default_config_(default_config), current_(std::move(initial)) {
  if (default_config_.shards > 1) {
    sharded_ = ShardedSnapshot::Make(current_, default_config_.shards);
    size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
    shard_pool_ = std::make_shared<ThreadPool>(
        std::min(sharded_->shard_count(), hw));
  }
}

PragueConfig SessionManager::DefaultConfig() const {
  std::lock_guard<std::mutex> lock(mu_);
  return default_config_;
}

std::shared_ptr<ManagedSession> SessionManager::OpenWithDeadline(
    int64_t run_deadline_ms) {
  PragueConfig config = DefaultConfig();
  config.run_deadline_ms = run_deadline_ms;
  return Open(config);
}

void SessionManager::SetDefaultRunDeadlineMillis(int64_t ms) {
  std::lock_guard<std::mutex> lock(mu_);
  default_config_.run_deadline_ms = ms;
}

int64_t SessionManager::DefaultRunDeadlineMillis() const {
  std::lock_guard<std::mutex> lock(mu_);
  return default_config_.run_deadline_ms;
}

std::shared_ptr<ManagedSession> SessionManager::Open(
    const PragueConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  PragueConfig wired = config;
  // Hand the shared view/pool to the session when they fit its config;
  // otherwise the session builds its own lazily (ResolveShardPlan).
  if (sharded_ != nullptr && wired.shards == sharded_->shard_count() &&
      sharded_->Covers(*current_)) {
    wired.sharded_snapshot = sharded_;
    wired.shard_pool = shard_pool_;
  }
  auto session = std::shared_ptr<ManagedSession>(new ManagedSession(
      next_session_id_++, current_, run_tally_, trace_ring_, wired));
  ++sessions_opened_;
  sessions_[session->id()] = session;
  // Lazy prune: drop registry entries whose sessions have closed.
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    it = it->second.expired() ? sessions_.erase(it) : std::next(it);
  }
  return session;
}

SnapshotPtr SessionManager::current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

Status SessionManager::Publish(SnapshotPtr next) {
  return PublishInternal(std::move(next), /*cow_successor=*/false);
}

Status SessionManager::PublishInternal(SnapshotPtr next, bool cow_successor) {
  if (next == nullptr) {
    return Status::InvalidArgument("cannot publish a null snapshot");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (next->version() <= current_->version()) {
    return Status::FailedPrecondition(
        "stale publish: version " + std::to_string(next->version()) +
        " does not exceed current version " +
        std::to_string(current_->version()));
  }
  if (sharded_ != nullptr) {
    // Only Append()'s output is a proven COW successor whose interior
    // shards can be reused; an arbitrary published snapshot gets a fresh
    // partition. Sessions pinning the old view are unaffected either way.
    sharded_ = cow_successor && sharded_->Covers(*current_)
                   ? ShardedSnapshot::Append(sharded_, next)
                   : ShardedSnapshot::Make(next, default_config_.shards);
  }
  current_ = std::move(next);
  ++snapshots_published_;
  obs::EngineMetrics::Get().snapshots_published_total->Increment();
  return Status::OK();
}

Result<MaintenanceReport> SessionManager::Append(
    std::vector<Graph> graphs, const MaintenanceOptions& options,
    const LabelDictionary* graph_labels) {
  // One writer at a time: without this, two concurrent appends would both
  // build successors of the same base and the second publish would lose
  // the first one's graphs.
  std::lock_guard<std::mutex> writer_lock(writer_mu_);
  SnapshotPtr base = current();

  // Durable mode captures the batch for the WAL before the graphs are
  // consumed. Node labels travel as names so replay re-interns them
  // deterministically whatever dictionary it starts from.
  storage::AppendPayload payload;
  if (storage_ != nullptr) {
    payload.options = options;
    payload.label_names =
        (graph_labels != nullptr ? *graph_labels : base->labels()).names();
    payload.graphs = graphs;
  }

  Result<SnapshotAppendResult> appended =
      AppendGraphs(*base, std::move(graphs), options, graph_labels);
  if (!appended.ok()) return appended.status();

  if (storage_ != nullptr) {
    // Log-then-publish: the record must be durable before any session can
    // observe the successor. A failure here leaves the published state
    // unchanged — the caller sees the error, nothing was acknowledged.
    payload.to_version = appended.value().report.to_version;
    PRAGUE_RETURN_NOT_OK(storage_->LogAppend(payload));
    last_append_alpha_ = options.alpha;
  }

  PRAGUE_RETURN_NOT_OK(
      PublishInternal(appended.value().snapshot, /*cow_successor=*/true));
  return appended.value().report;
}

Result<MaintenanceReport> SessionManager::Append(
    std::vector<Graph> graphs, double alpha,
    const LabelDictionary* graph_labels) {
  MaintenanceOptions options;
  options.alpha = alpha;
  return Append(std::move(graphs), options, graph_labels);
}

void SessionManager::AttachStorage(
    std::shared_ptr<storage::StorageEngine> engine) {
  // Lock order everywhere is writer_mu_ → mu_ (Append takes writer_mu_
  // then reads current() under mu_). storage_ is read under either lock,
  // so the write holds both.
  std::lock_guard<std::mutex> writer_lock(writer_mu_);
  std::lock_guard<std::mutex> lock(mu_);
  storage_ = std::move(engine);
  if (storage_ != nullptr) {
    // Until the first append, checkpoints re-record the α the persisted
    // index was built with.
    last_append_alpha_ = storage_->recovered().manifest.alpha;
  }
}

Status SessionManager::Checkpoint() {
  // writer_mu_ keeps a concurrent Append from publishing a version newer
  // than the one we checkpoint while the rotation is mid-flight.
  std::lock_guard<std::mutex> writer_lock(writer_mu_);
  if (storage_ == nullptr) {
    return Status::InvalidArgument("no storage engine attached");
  }
  return storage_->Checkpoint(*current(), last_append_alpha_);
}

SessionManagerStats SessionManager::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SessionManagerStats stats;
  stats.current_version = current_->version();
  stats.shards = sharded_ != nullptr ? sharded_->shard_count() : 1;
  stats.sessions_opened = sessions_opened_;
  stats.snapshots_published = snapshots_published_;
  stats.runs_served = run_tally_->runs.Value();
  stats.runs_truncated = run_tally_->truncated.Value();
  const AdmissionStats admission = admission_.Stats();
  stats.runs_shed = admission.runs_shed;
  stats.tenants = admission.tenants;
  if (storage_ != nullptr) {
    const storage::StorageStats durability = storage_->Stats();
    stats.durable = true;
    stats.wal_bytes = durability.wal_bytes;
    stats.last_checkpoint_version = durability.last_checkpoint_version;
  }
  for (const auto& [id, weak] : sessions_) {
    if (std::shared_ptr<ManagedSession> session = weak.lock()) {
      ++stats.open_sessions;
      ++stats.sessions_by_version[session->version()];
      stats.open_session_infos.push_back({id, session->version()});
    }
  }
  std::sort(stats.open_session_infos.begin(), stats.open_session_infos.end(),
            [](const OpenSessionInfo& a, const OpenSessionInfo& b) {
              return a.id < b.id;
            });
  return stats;
}

}  // namespace prague
