// Session action log: a durable record of every visual action a user
// performed, sufficient to reconstruct the full engine state (query
// fragment, SPIG set, candidates, simFlag) by replay. This is what a GUI
// needs for crash recovery and for the paper's user-study protocol of
// re-running recorded formulation sessions.
//
// PragueSession records its own log automatically; SaveSessionLog /
// LoadSessionLog serialize it as one action per line, and ReplaySession
// rebuilds a session from it.

#ifndef PRAGUE_CORE_SESSION_LOG_H_
#define PRAGUE_CORE_SESSION_LOG_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/visual_query.h"
#include "index/database_snapshot.h"
#include "util/result.h"

namespace prague {

class PragueSession;
struct PragueConfig;

/// \brief One recorded visual action.
struct SessionAction {
  enum class Kind {
    kAddNode,      ///< label
    kAddEdge,      ///< u, v, edge_label
    kDeleteEdge,   ///< ell
    kRelabelNode,  ///< node, label
    kSimQuery,     ///< (no operands)
  };

  Kind kind = Kind::kAddNode;
  Label label = 0;
  NodeId u = 0;
  NodeId v = 0;
  Label edge_label = 0;
  FormulationId ell = 0;
  NodeId node = 0;

  bool operator==(const SessionAction&) const = default;
};

/// \brief The ordered action history of one session.
using SessionLog = std::vector<SessionAction>;

/// \brief Writes the log, one action per line.
Status SaveSessionLog(const SessionLog& log, std::ostream* out);
/// \brief Writes the log to a file.
Status SaveSessionLogToFile(const SessionLog& log, const std::string& path);
/// \brief Parses a log.
Result<SessionLog> LoadSessionLog(std::istream* in);
/// \brief Parses a log from a file.
Result<SessionLog> LoadSessionLogFromFile(const std::string& path);

/// \brief Rebuilds a session by replaying \p log against \p snapshot.
/// The replayed session's state (candidates, SPIGs, simFlag) equals the
/// original's at the moment the log was captured — provided the snapshot
/// is the same version the original session was pinned to.
Result<std::unique_ptr<PragueSession>> ReplaySession(
    const SessionLog& log, SnapshotPtr snapshot, const PragueConfig& config);

}  // namespace prague

#endif  // PRAGUE_CORE_SESSION_LOG_H_
