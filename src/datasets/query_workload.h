// Visual query workloads.
//
// The paper's queries Q1–Q8 (Figure 8) were drawn by human participants
// over the AIDS and synthetic datasets; each comes with a default
// formulation sequence (the edge numbering in the figure). This module
// generates analogous queries programmatically:
//  * containment queries — sampled connected subgraphs of data graphs, so
//    exact matches are guaranteed (Figure 9(a) analogues);
//  * similarity queries — sampled subgraphs with 1..k label mutations so
//    no exact match survives but near matches do (Q1–Q8 analogues; one
//    mutation approximates the paper's "best case" where most candidates
//    are verification-free, several mutations the "worst case").

#ifndef PRAGUE_DATASETS_QUERY_WORKLOAD_H_
#define PRAGUE_DATASETS_QUERY_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_database.h"
#include "util/result.h"
#include "util/rng.h"

namespace prague {

/// \brief A query plus the order in which a user draws its edges.
struct VisualQuerySpec {
  std::string name;
  Graph graph;
  /// Formulation order of graph edge ids; every prefix is connected.
  std::vector<EdgeId> sequence;
};

/// \brief Deterministic prefix-connected edge order (DFS from node 0).
std::vector<EdgeId> DefaultFormulationSequence(const Graph& q);

/// \brief A random prefix-connected edge order (Table III studies these).
std::vector<EdgeId> RandomFormulationSequence(const Graph& q, Rng* rng);

/// \brief Generates workload queries over one database.
class WorkloadGenerator {
 public:
  /// \p db must outlive the generator.
  WorkloadGenerator(const GraphDatabase* db, uint64_t seed);

  /// \brief A query with ≥ 1 guaranteed exact match.
  Result<VisualQuerySpec> ContainmentQuery(size_t edges,
                                           const std::string& name);

  /// \brief A query with no exact match in D (verified by scan) whose
  /// (|q|−mutations)-edge core still matches. More \p mutations push the
  /// query toward the paper's "worst case".
  Result<VisualQuerySpec> SimilarityQuery(size_t edges, int mutations,
                                          const std::string& name);

  /// \brief True iff some data graph contains \p q (VF2 scan, early exit).
  bool HasExactMatch(const Graph& q) const;

 private:
  Result<Graph> SampleConnectedSubgraph(size_t edges);

  const GraphDatabase* db_;
  Rng rng_;
};

}  // namespace prague

#endif  // PRAGUE_DATASETS_QUERY_WORKLOAD_H_
