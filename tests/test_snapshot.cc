// DatabaseSnapshot semantics: owning (Make) vs borrowing (Borrow)
// construction, copy-on-write appends that structurally share unchanged
// graph storage and id-sets with their base, base immutability, exactness
// of the successor's id sets, and versioned index persistence (format v2
// round-trip plus v1 backward compatibility).

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "graph/vf2.h"
#include "index/database_snapshot.h"
#include "index/index_io.h"
#include "index/index_maintenance.h"
#include "mining/gspan.h"
#include "test_fixtures.h"

namespace prague {
namespace {

using testing::kC;
using testing::kN;
using testing::kO;
using testing::kS;

// Fresh owned snapshot over copies of the tiny fixture's data. Copies are
// cheap: graph storage and id-set payloads are structurally shared.
SnapshotPtr FreshTinySnapshot(uint64_t version = 0) {
  const auto& fixture = testing::TinyFixture::Get();
  return DatabaseSnapshot::Make(fixture.db, fixture.indexes, version);
}

TEST(DatabaseSnapshotTest, MakeOwnsItsComponents) {
  // The snapshot must stay valid after every external handle to the moved-
  // in components is gone — exactly the by-value-return scenario that a
  // Borrow would turn into a dangling view.
  SnapshotPtr snap;
  {
    GraphDatabase db = testing::TinyDatabase();
    MiningConfig mining;
    mining.min_support_ratio = 0.34;
    mining.max_fragment_edges = 6;
    Result<MiningResult> mined = MineFragments(db, mining);
    ASSERT_TRUE(mined.ok());
    A2fConfig a2f;
    a2f.beta = 2;
    ActionAwareIndexes indexes = BuildActionAwareIndexes(*mined, a2f);
    snap = DatabaseSnapshot::Make(std::move(db), std::move(indexes), 42);
  }
  EXPECT_EQ(snap->version(), 42u);
  EXPECT_EQ(snap->db().size(), 6u);
  EXPECT_GT(snap->indexes().a2f.VertexCount(), 0u);
  EXPECT_EQ(snap->labels().Name(kC), "C");
}

TEST(DatabaseSnapshotTest, BorrowViewsTheCallersComponents) {
  const auto& fixture = testing::TinyFixture::Get();
  SnapshotPtr snap = DatabaseSnapshot::Borrow(&fixture.db, &fixture.indexes, 7);
  EXPECT_EQ(&snap->db(), &fixture.db);
  EXPECT_EQ(&snap->indexes(), &fixture.indexes);
  EXPECT_EQ(&snap->labels(), &fixture.db.labels());
  EXPECT_EQ(snap->version(), 7u);
}

TEST(DatabaseSnapshotTest, CopyingTheDatabaseSharesGraphStorage) {
  const auto& fixture = testing::TinyFixture::Get();
  GraphDatabase copy = fixture.db;
  ASSERT_EQ(copy.size(), fixture.db.size());
  for (GraphId gid = 0; gid < copy.size(); ++gid) {
    EXPECT_EQ(copy.shared_graph(gid).get(), fixture.db.shared_graph(gid).get())
        << "graph " << gid << " was deep-copied";
  }
}

TEST(DatabaseSnapshotTest, CowAppendSharesUnchangedStateWithBase) {
  SnapshotPtr base = FreshTinySnapshot();
  std::vector<Graph> extra;
  // N-N-N matches no existing frequent fragment or DIF containing C/S/O
  // patterns beyond those with N — most id-sets must stay untouched.
  extra.push_back(testing::MakeGraph({kN, kN, kN}, {{0, 1}, {1, 2}}));
  Result<SnapshotAppendResult> next = AppendGraphs(*base, extra, 0.34);
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  const DatabaseSnapshot& succ = *next->snapshot;

  // All pre-existing graphs are the same heap objects, not copies.
  ASSERT_EQ(succ.db().size(), base->db().size() + 1);
  for (GraphId gid = 0; gid < base->db().size(); ++gid) {
    EXPECT_EQ(succ.db().shared_graph(gid).get(),
              base->db().shared_graph(gid).get())
        << "graph " << gid;
  }

  // Id-sets the new graph did not extend still share their payload with
  // the base (copy-on-write: only mutated sets were cloned).
  size_t shared_sets = 0;
  const GraphId new_gid = static_cast<GraphId>(base->db().size());
  for (A2fId id = 0; id < base->indexes().a2f.VertexCount(); ++id) {
    const IdSet& before = base->indexes().a2f.vertex(id).fsg_ids;
    const IdSet& after = succ.indexes().a2f.vertex(id).fsg_ids;
    if (!after.Contains(new_gid)) {
      EXPECT_TRUE(after.SharesStorageWith(before)) << "A2F " << id;
      ++shared_sets;
    }
  }
  EXPECT_GT(shared_sets, 0u) << "no unchanged id-set to share?";
}

TEST(DatabaseSnapshotTest, CowAppendLeavesBaseUntouched) {
  SnapshotPtr base = FreshTinySnapshot();
  const size_t base_size = base->db().size();
  std::vector<IdSet> before;
  for (A2fId id = 0; id < base->indexes().a2f.VertexCount(); ++id) {
    before.push_back(base->indexes().a2f.vertex(id).fsg_ids);
  }

  std::vector<Graph> extra;
  // A copy of g0's shape: extends many id-sets in the successor.
  extra.push_back(testing::MakeGraph({kC, kC, kC, kS},
                                     {{0, 1}, {1, 2}, {0, 2}, {0, 3}}));
  Result<SnapshotAppendResult> next = AppendGraphs(*base, extra, 0.34);
  ASSERT_TRUE(next.ok());

  EXPECT_EQ(base->db().size(), base_size);
  for (A2fId id = 0; id < base->indexes().a2f.VertexCount(); ++id) {
    EXPECT_EQ(base->indexes().a2f.vertex(id).fsg_ids, before[id]) << id;
  }
  // And the successor really did change.
  EXPECT_EQ(next->snapshot->db().size(), base_size + 1);
}

TEST(DatabaseSnapshotTest, CowAppendIdSetsMatchVf2Oracle) {
  SnapshotPtr base = FreshTinySnapshot();
  std::vector<Graph> extra;
  extra.push_back(testing::MakeGraph({kC, kC, kC, kS},
                                     {{0, 1}, {1, 2}, {0, 2}, {0, 3}}));
  extra.push_back(testing::MakeGraph({kN, kC, kN}, {{0, 1}, {1, 2}}));
  Result<SnapshotAppendResult> next = AppendGraphs(*base, extra, 0.34);
  ASSERT_TRUE(next.ok());
  const DatabaseSnapshot& succ = *next->snapshot;

  for (A2fId id = 0; id < succ.indexes().a2f.VertexCount(); ++id) {
    const A2fVertex& v = succ.indexes().a2f.vertex(id);
    for (GraphId gid = 0; gid < succ.db().size(); ++gid) {
      EXPECT_EQ(v.fsg_ids.Contains(gid),
                IsSubgraphIsomorphic(v.fragment, succ.db().graph(gid)))
          << "A2F " << id << " g" << gid;
    }
  }
  for (A2iId d = 0; d < succ.indexes().a2i.EntryCount(); ++d) {
    const A2iEntry& e = succ.indexes().a2i.entry(d);
    for (GraphId gid = 0; gid < succ.db().size(); ++gid) {
      EXPECT_EQ(e.fsg_ids.Contains(gid),
                IsSubgraphIsomorphic(e.fragment, succ.db().graph(gid)))
          << "A2I " << d << " g" << gid;
    }
  }
}

TEST(DatabaseSnapshotTest, CowAppendStampsVersions) {
  SnapshotPtr base = FreshTinySnapshot(5);
  std::vector<Graph> extra = {
      testing::MakeGraph({kC, kS, kC}, {{0, 1}, {1, 2}})};
  Result<SnapshotAppendResult> next = AppendGraphs(*base, extra, 0.34);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->report.from_version, 5u);
  EXPECT_EQ(next->report.to_version, 6u);
  EXPECT_EQ(next->snapshot->version(), 6u);
  EXPECT_EQ(next->report.graphs_added, 1u);
}

TEST(DatabaseSnapshotTest, CowAppendReinternsForeignLabels) {
  SnapshotPtr base = FreshTinySnapshot();
  // Incoming graphs interned against a dictionary with a *different* label
  // order: id 0 = "S", id 1 = "C". Without re-interning the appended graph
  // would silently swap sulfur and carbon.
  LabelDictionary foreign;
  Label fS = foreign.Intern("S");
  Label fC = foreign.Intern("C");
  std::vector<Graph> extra = {
      testing::MakeGraph({fC, fS, fC}, {{0, 1}, {1, 2}})};
  Result<SnapshotAppendResult> next =
      AppendGraphs(*base, extra, 0.34, &foreign);
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  const Graph& appended =
      next->snapshot->db().graph(next->snapshot->db().size() - 1);
  EXPECT_EQ(appended.NodeLabel(0), kC);
  EXPECT_EQ(appended.NodeLabel(1), kS);
  EXPECT_EQ(appended.NodeLabel(2), kC);
}

TEST(DatabaseSnapshotTest, CowAppendRejectsUnknownForeignLabel) {
  SnapshotPtr base = FreshTinySnapshot();
  LabelDictionary foreign;
  Label fX = foreign.Intern("Xe");  // not in the tiny dictionary... but
  // re-interning *adds* new labels to the successor's dictionary, so this
  // must succeed and extend the dictionary instead of failing.
  std::vector<Graph> extra = {testing::MakeGraph({fX, fX}, {{0, 1}})};
  Result<SnapshotAppendResult> next =
      AppendGraphs(*base, extra, 0.34, &foreign);
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  const DatabaseSnapshot& succ = *next->snapshot;
  const Graph& appended = succ.db().graph(succ.db().size() - 1);
  Result<std::string> name = succ.labels().NameOf(appended.NodeLabel(0));
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(*name, "Xe");
  // The base dictionary is untouched.
  EXPECT_FALSE(base->labels().Lookup("Xe").ok());
}

TEST(LabelDictionaryTest, NameOfBoundsChecks) {
  const auto& fixture = testing::TinyFixture::Get();
  Result<std::string> ok = fixture.db.labels().NameOf(kS);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, "S");
  Result<std::string> bad = fixture.db.labels().NameOf(
      static_cast<Label>(fixture.db.labels().size() + 3));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), Status::Code::kNotFound)
      << bad.status().ToString();
}

TEST(VersionedIndexIoTest, V2RoundTripKeepsVersion) {
  const auto& fixture = testing::TinyFixture::Get();
  std::ostringstream out;
  ASSERT_TRUE(IndexSerializer::Save(fixture.indexes, &out, 9).ok());
  EXPECT_EQ(out.str().rfind("PRAGUE_INDEX 2\nVERSION 9\n", 0), 0u)
      << "v2 header missing";

  std::istringstream in(out.str());
  Result<VersionedIndexes> loaded = IndexSerializer::LoadVersioned(&in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->version, 9u);
  ASSERT_EQ(loaded->indexes.a2f.VertexCount(),
            fixture.indexes.a2f.VertexCount());
  for (A2fId id = 0; id < loaded->indexes.a2f.VertexCount(); ++id) {
    EXPECT_EQ(loaded->indexes.a2f.FsgIds(id), fixture.indexes.a2f.FsgIds(id))
        << id;
  }
  ASSERT_EQ(loaded->indexes.a2i.EntryCount(),
            fixture.indexes.a2i.EntryCount());
}

TEST(VersionedIndexIoTest, V1FilesLoadWithVersionZero) {
  const auto& fixture = testing::TinyFixture::Get();
  std::ostringstream out;
  ASSERT_TRUE(IndexSerializer::Save(fixture.indexes, &out, 3).ok());
  // Rewrite the v2 header into the legacy v1 form.
  std::string text = out.str();
  const std::string v2_header = "PRAGUE_INDEX 2\nVERSION 3\n";
  ASSERT_EQ(text.rfind(v2_header, 0), 0u);
  text = "PRAGUE_INDEX 1\n" + text.substr(v2_header.size());

  std::istringstream in(text);
  Result<VersionedIndexes> loaded = IndexSerializer::LoadVersioned(&in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->version, 0u);
  EXPECT_EQ(loaded->indexes.a2f.VertexCount(),
            fixture.indexes.a2f.VertexCount());

  // The version-dropping Load() accepts both formats too.
  std::istringstream in2(text);
  EXPECT_TRUE(IndexSerializer::Load(&in2).ok());
}

TEST(VersionedIndexIoTest, RejectsUnknownFormatVersion) {
  std::istringstream bad("PRAGUE_INDEX 3\nVERSION 1\n");
  EXPECT_FALSE(IndexSerializer::LoadVersioned(&bad).ok());
}

}  // namespace
}  // namespace prague
