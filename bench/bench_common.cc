#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <set>

#include "graph/vf2.h"
#include "util/stopwatch.h"

namespace prague::bench {

double Scale() {
  static double scale = [] {
    const char* env = std::getenv("PRAGUE_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    double s = std::strtod(env, nullptr);
    return s > 0 ? s : 1.0;
  }();
  return scale;
}

size_t AidsGraphCount() {
  return static_cast<size_t>(4000 * Scale());
}

std::vector<size_t> SyntheticSizes() {
  std::vector<size_t> out;
  for (size_t base : {1000, 2000, 4000, 6000, 8000}) {
    out.push_back(static_cast<size_t>(static_cast<double>(base) * Scale()));
  }
  return out;
}

namespace {

Workbench BuildWorkbench(GraphDatabase db, double alpha, size_t beta,
                         size_t max_fragment_edges) {
  Workbench bench;
  bench.db = std::move(db);
  MiningConfig mining;
  mining.min_support_ratio = alpha;
  mining.max_fragment_edges = max_fragment_edges;
  Stopwatch timer;
  Result<MiningResult> mined = MineFragments(bench.db, mining);
  if (!mined.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 mined.status().ToString().c_str());
    std::abort();
  }
  bench.mined = std::move(*mined);
  bench.mining_seconds = timer.ElapsedSeconds();
  A2fConfig a2f;
  a2f.beta = beta;
  bench.indexes = BuildActionAwareIndexes(bench.mined, a2f);
  bench.alpha = alpha;
  // Owned copies (cheap via structural sharing) — a Borrow would dangle
  // once the Workbench is returned by value.
  bench.snapshot = DatabaseSnapshot::Make(bench.db, bench.indexes);
  return bench;
}

}  // namespace

Workbench BuildAidsWorkbench(size_t graph_count, double alpha, size_t beta) {
  AidsGeneratorConfig gen;
  gen.graph_count = graph_count;
  gen.seed = 2012;
  // Visual queries go up to 10 edges (Section VIII), so the action-aware
  // indexes cover fragments up to that size.
  return BuildWorkbench(GenerateAidsLikeDatabase(gen), alpha, beta,
                        /*max_fragment_edges=*/10);
}

Workbench BuildSyntheticWorkbench(size_t graph_count, double alpha,
                                  size_t beta) {
  SyntheticGeneratorConfig gen;
  gen.graph_count = graph_count;
  gen.seed = 2012;
  return BuildWorkbench(GenerateSyntheticDatabase(gen), alpha, beta,
                        /*max_fragment_edges=*/8);
}

namespace {

std::vector<VisualQuerySpec> SimilarityQuerySet(
    const Workbench& bench, const std::vector<int>& mutations,
    const std::vector<size_t>& sizes, const char* prefix, uint64_t seed) {
  WorkloadGenerator workload(&bench.db, seed);
  std::vector<VisualQuerySpec> out;
  for (size_t i = 0; i < mutations.size(); ++i) {
    std::string name = std::string(prefix) + std::to_string(i + 1);
    Result<VisualQuerySpec> spec =
        workload.SimilarityQuery(sizes[i], mutations[i], name);
    if (!spec.ok()) {
      std::fprintf(stderr, "query %s failed: %s\n", name.c_str(),
                   spec.status().ToString().c_str());
      std::abort();
    }
    out.push_back(std::move(*spec));
  }
  return out;
}

}  // namespace

Result<VisualQuerySpec> BestCaseSimilarityQuery(const Workbench& bench,
                                                size_t edges,
                                                const std::string& name) {
  // Label pairs that occur on any data edge.
  std::set<std::pair<Label, Label>> present;
  for (GraphId gid = 0; gid < bench.db.size(); ++gid) {
    const Graph& g = bench.db.graph(gid);
    for (const Edge& e : g.edges()) {
      Label a = g.NodeLabel(e.u);
      Label b = g.NodeLabel(e.v);
      present.emplace(std::min(a, b), std::max(a, b));
    }
  }
  // Frequent fragments of exactly edges-1 edges, weakest support first:
  // a barely-frequent fragment plus one rare edge is the likeliest to have
  // zero exact matches while keeping its (|q|-1)-level subgraph frequent —
  // which is what routes the fragment's whole FSG set into Rfree.
  std::vector<const MinedFragment*> hosts;
  for (const MinedFragment& f : bench.mined.frequent) {
    if (f.size() == edges - 1) hosts.push_back(&f);
  }
  if (hosts.empty()) {
    return Status::NotFound("no frequent fragment of size " +
                            std::to_string(edges - 1));
  }
  std::sort(hosts.begin(), hosts.end(),
            [](const MinedFragment* a, const MinedFragment* b) {
              return a->support() < b->support();
            });

  size_t label_count = bench.db.labels().size();
  int scans_left = 200;  // cap on full-database VF2 scans
  auto try_build = [&](const MinedFragment& host, NodeId anchor,
                       Label lb) -> std::optional<VisualQuerySpec> {
    Label la = host.graph.NodeLabel(anchor);
    bool absent = !present.contains({std::min(la, lb), std::max(la, lb)});
    GraphBuilder b(host.graph);
    NodeId fresh = b.AddNode(lb);
    if (!b.AddEdge(anchor, fresh).ok()) return std::nullopt;
    VisualQuerySpec spec;
    spec.name = name;
    spec.graph = std::move(b).Build();
    if (!absent) {
      if (scans_left-- <= 0) return std::nullopt;
      for (GraphId gid = 0; gid < bench.db.size(); ++gid) {
        const Graph& g = bench.db.graph(gid);
        if (IsSubgraphIsomorphic(spec.graph, g)) return std::nullopt;
      }
    }
    spec.sequence = DefaultFormulationSequence(spec.graph);
    return spec;
  };
  for (const MinedFragment* host : hosts) {
    for (NodeId anchor = 0; anchor < host->graph.NodeCount(); ++anchor) {
      // Rarest labels have the highest ids under both generators' skew.
      for (Label lb = static_cast<Label>(label_count); lb-- > 0;) {
        std::optional<VisualQuerySpec> spec = try_build(*host, anchor, lb);
        if (spec) return std::move(*spec);
        if (scans_left <= 0) break;
      }
      if (scans_left <= 0) break;
    }
    if (scans_left <= 0) break;
  }
  return Status::NotFound("could not attach a no-match edge");
}

std::vector<VisualQuerySpec> AidsQueries(const Workbench& bench) {
  // Q1: best case — frequent fragment + absent edge (Rver = ∅);
  // Q2-Q4: label mutations → NIF-heavy, worst-case flavour.
  std::vector<VisualQuerySpec> out =
      SimilarityQuerySet(bench, {2, 2, 3}, {7, 8, 8}, "Q", 71);
  Result<VisualQuerySpec> best = BestCaseSimilarityQuery(bench, 7, "Q1");
  if (best.ok()) {
    out.insert(out.begin(), std::move(*best));
  } else {
    // Fall back to a mutation query so the set always has four entries.
    out.insert(out.begin(),
               SimilarityQuerySet(bench, {1}, {7}, "Q", 81).front());
  }
  for (size_t i = 0; i < out.size(); ++i) {
    out[i].name = "Q" + std::to_string(i + 1);
  }
  return out;
}

std::vector<VisualQuerySpec> SyntheticQueries(const Workbench& bench) {
  std::vector<VisualQuerySpec> out =
      SimilarityQuerySet(bench, {2, 2, 3}, {7, 7, 8}, "Q", 72);
  Result<VisualQuerySpec> best = BestCaseSimilarityQuery(bench, 6, "Q5");
  if (best.ok()) {
    out.insert(out.begin(), std::move(*best));
  } else {
    out.insert(out.begin(),
               SimilarityQuerySet(bench, {1}, {6}, "Q", 82).front());
  }
  for (size_t i = 0; i < out.size(); ++i) {
    out[i].name = "Q" + std::to_string(i + 5);
  }
  return out;
}

std::vector<VisualQuerySpec> ContainmentQueries(const Workbench& bench) {
  WorkloadGenerator workload(&bench.db, 73);
  std::vector<VisualQuerySpec> out;
  for (int i = 0; i < 6; ++i) {
    Result<VisualQuerySpec> spec = workload.ContainmentQuery(
        4 + static_cast<size_t>(i), "Q" + std::to_string(i + 1));
    if (!spec.ok()) {
      std::fprintf(stderr, "containment query failed: %s\n",
                   spec.status().ToString().c_str());
      std::abort();
    }
    out.push_back(std::move(*spec));
  }
  return out;
}

FormulatedQuery Formulate(const VisualQuerySpec& spec,
                          const ActionAwareIndexes& indexes,
                          ThreadPool* pool) {
  FormulatedQuery out;
  const Graph& q = spec.graph;
  std::vector<NodeId> node_map(q.NodeCount(), kInvalidNode);
  for (EdgeId e : spec.sequence) {
    const Edge& edge = q.GetEdge(e);
    for (NodeId n : {edge.u, edge.v}) {
      if (node_map[n] == kInvalidNode) {
        node_map[n] = out.query.AddNode(q.NodeLabel(n));
      }
    }
    Result<FormulationId> ell =
        out.query.AddEdge(node_map[edge.u], node_map[edge.v], edge.label);
    if (!ell.ok()) std::abort();
    if (!out.spigs.AddForNewEdge(out.query, *ell, indexes, pool).ok()) {
      std::abort();
    }
  }
  return out;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]),
                  c < row.size() ? row[c].c_str() : "");
    }
    std::printf("\n");
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) print_row(row);
}

BenchJsonWriter::BenchJsonWriter(const std::string& default_path) {
  const char* env = std::getenv("PRAGUE_BENCH_JSON");
  path_ = env != nullptr ? env : default_path;
  file_ = std::fopen(path_.c_str(), "w");
  if (file_ == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path_.c_str());
    return;
  }
  std::fprintf(file_, "[\n");
}

BenchJsonWriter::~BenchJsonWriter() {
  if (file_ == nullptr) return;
  std::fprintf(file_, "\n]\n");
  std::fclose(file_);
}

void BenchJsonWriter::Add(const std::string& object) {
  if (file_ == nullptr) return;
  std::fprintf(file_, "%s  %s", first_ ? "" : ",\n", object.c_str());
  first_ = false;
}

std::string Fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string FmtMs(double seconds) { return Fmt(seconds * 1000, 3); }

void Banner(const std::string& name, const std::string& detail) {
  std::printf("== %s ==\n", name.c_str());
  std::printf("scale=%.1fx (PRAGUE_BENCH_SCALE; 10 = paper scale)  %s\n\n",
              Scale(), detail.c_str());
}

}  // namespace prague::bench
