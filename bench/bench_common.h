// Shared infrastructure for the paper-reproduction benchmarks.
//
// Scaling: the paper ran on a 2012 desktop against AIDS (40K graphs) and
// synthetic sets of 10K-80K. Defaults here are 1/10 of that so the whole
// suite finishes in minutes; set PRAGUE_BENCH_SCALE=10 to run at full
// paper scale. Every benchmark prints the scale it ran at. Reproduction
// targets are the *shapes* — who wins, growth trends, crossovers — not
// the absolute 2012 numbers.

#ifndef PRAGUE_BENCH_BENCH_COMMON_H_
#define PRAGUE_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baselines/distvp.h"
#include "baselines/grafil.h"
#include "baselines/sigma.h"
#include "datasets/aids_generator.h"
#include "datasets/query_workload.h"
#include "datasets/synthetic_generator.h"
#include "gui/session_simulator.h"
#include "index/action_aware_index.h"
#include "mining/gspan.h"
#include "util/thread_pool.h"

namespace prague::bench {

/// \brief PRAGUE_BENCH_SCALE env var (default 1.0). 10 = paper scale.
double Scale();

/// \brief One prepared dataset: graphs + mining result + indexes.
struct Workbench {
  GraphDatabase db;
  MiningResult mined;
  ActionAwareIndexes indexes;
  /// Version-0 snapshot over owned *copies* of db/indexes (cheap: graph
  /// storage and id-sets are shared). Owned rather than borrowed because
  /// Workbench is returned by value and a borrow would dangle.
  SnapshotPtr snapshot;
  /// Mining ratio the indexes were built with (for append benchmarks).
  double alpha = 0;
  double mining_seconds = 0;

  /// Baseline engines share the mined fragments.
  FeatureIndex BuildFeatureIndex(size_t max_feature_edges = 4) const {
    FeatureIndexConfig config;
    config.max_feature_edges = max_feature_edges;
    return FeatureIndex::Build(mined.frequent, config);
  }
};

/// \brief AIDS-like workbench. Paper settings: α = 0.1, β = 8; at our
/// default 4K-graph scale β = 4 keeps fragment sizes sensible.
Workbench BuildAidsWorkbench(size_t graph_count, double alpha = 0.1,
                             size_t beta = 4);

/// \brief Synthetic workbench (paper: α = 0.05, β = 4).
Workbench BuildSyntheticWorkbench(size_t graph_count, double alpha = 0.05,
                                  size_t beta = 4);

/// \brief Default AIDS-like size (4000 × scale; paper: 40000).
size_t AidsGraphCount();

/// \brief The paper's synthetic sizes 10K-80K, scaled.
std::vector<size_t> SyntheticSizes();

/// \brief A "best case" similarity query (the paper's Q1/Q5 profile): a
/// mined frequent fragment plus one edge whose label pair is absent from
/// the database. Every high-level subgraph not touching the absent edge is
/// frequent, so all candidates are verification-free (Rver = ∅).
Result<VisualQuerySpec> BestCaseSimilarityQuery(const Workbench& bench,
                                                size_t edges,
                                                const std::string& name);

/// \brief The Q1-Q4 analogues over an AIDS-like workbench: Q1 is the
/// verification-free best case; Q2-Q4 are progressively more NIF-heavy
/// (all candidates need verification — the paper's worst case).
std::vector<VisualQuerySpec> AidsQueries(const Workbench& bench);

/// \brief The Q5-Q8 analogues over a synthetic workbench.
std::vector<VisualQuerySpec> SyntheticQueries(const Workbench& bench);

/// \brief Six containment queries (the Q1-Q6 of [6], used by Fig 9(a)).
std::vector<VisualQuerySpec> ContainmentQueries(const Workbench& bench);

/// \brief A query formulated into PRAGUE state (for direct core-API
/// benchmarks that sweep σ without re-formulating).
struct FormulatedQuery {
  VisualQuery query;
  SpigSet spigs;
};

/// \brief Replays a spec through VisualQuery + SpigSet construction.
/// \p pool parallelizes each SPIG build (null = sequential).
FormulatedQuery Formulate(const VisualQuerySpec& spec,
                          const ActionAwareIndexes& indexes,
                          ThreadPool* pool = nullptr);

/// \brief Fixed-width table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// \brief "%.2f"-style formatting helpers.
std::string Fmt(double value, int decimals = 2);
std::string FmtMs(double seconds);

/// \brief Streams a JSON array of records to the PRAGUE_BENCH_JSON path
/// (falling back to \p default_path). Shared by the benchmarks that leave
/// machine-readable BENCH_*.json trails; the destructor closes the array.
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(const std::string& default_path);
  ~BenchJsonWriter();
  BenchJsonWriter(const BenchJsonWriter&) = delete;
  BenchJsonWriter& operator=(const BenchJsonWriter&) = delete;

  /// False when the output file could not be opened (already reported to
  /// stderr); Add() is then a no-op.
  bool ok() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }
  /// Appends one record. \p object must be a complete JSON object
  /// literal, e.g. "{\"sessions\": 4}".
  void Add(const std::string& object);

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  bool first_ = true;
};

/// \brief Prints the standard benchmark banner (name, scale, sizes).
void Banner(const std::string& name, const std::string& detail);

}  // namespace prague::bench

#endif  // PRAGUE_BENCH_BENCH_COMMON_H_
