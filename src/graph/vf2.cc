#include "graph/vf2.h"

#include <algorithm>
#include <cassert>

namespace prague {

Vf2Matcher::Vf2Matcher(const Graph& pattern, const Graph& target)
    : pattern_(pattern), target_(target) {
  // BFS order over the (connected) pattern so every non-root search node is
  // anchored to an already-mapped neighbor — this keeps the candidate set
  // for each step at "neighbors of one mapped image" instead of "all
  // target nodes".
  size_t n = pattern_.NodeCount();
  order_.reserve(n);
  anchor_.assign(n, kInvalidNode);
  if (n == 0) return;
  std::vector<bool> queued(n, false);
  // Start from the highest-degree node: it is the most constrained.
  NodeId root = 0;
  for (NodeId i = 1; i < n; ++i) {
    if (pattern_.Degree(i) > pattern_.Degree(root)) root = i;
  }
  order_.push_back(root);
  queued[root] = true;
  for (size_t head = 0; head < order_.size(); ++head) {
    NodeId u = order_[head];
    for (const Adjacency& a : pattern_.Neighbors(u)) {
      if (!queued[a.neighbor]) {
        queued[a.neighbor] = true;
        anchor_[a.neighbor] = u;
        order_.push_back(a.neighbor);
      }
    }
  }
  assert(order_.size() == n && "pattern must be connected");
  map_.assign(n, kInvalidNode);
  target_used_.assign(target_.NodeCount(), false);
}

bool Vf2Matcher::Feasible(NodeId pattern_node, NodeId target_node) const {
  if (pattern_.NodeLabel(pattern_node) != target_.NodeLabel(target_node)) {
    return false;
  }
  if (target_.Degree(target_node) < pattern_.Degree(pattern_node)) {
    return false;
  }
  // Every already-mapped pattern neighbor must be adjacent in the target
  // with a matching edge label.
  for (const Adjacency& a : pattern_.Neighbors(pattern_node)) {
    NodeId image = map_[a.neighbor];
    if (image == kInvalidNode) continue;
    EdgeId te = target_.FindEdge(target_node, image);
    if (te == kInvalidEdge) return false;
    if (target_.GetEdge(te).label != pattern_.GetEdge(a.edge).label) {
      return false;
    }
  }
  return true;
}

void Vf2Matcher::SetDeadline(const Deadline& deadline) {
  deadline_ = deadline;
}

bool Vf2Matcher::Recurse(size_t depth,
                         const std::function<bool(const NodeMapping&)>& fn) {
  if (depth == order_.size()) return fn(map_);
  NodeId p = order_[depth];
  if (anchor_[p] == kInvalidNode) {
    // Root: try every target node.
    for (NodeId t = 0; t < target_.NodeCount(); ++t) {
      ++nodes_expanded_;
      if (checker_.Check()) {
        deadline_hit_ = true;
        return false;
      }
      if (target_used_[t] || !Feasible(p, t)) continue;
      map_[p] = t;
      target_used_[t] = true;
      bool exhausted = Recurse(depth + 1, fn);
      target_used_[t] = false;
      map_[p] = kInvalidNode;
      if (!exhausted) return false;
    }
  } else {
    // Candidates: neighbors of the anchor's image.
    NodeId anchor_image = map_[anchor_[p]];
    for (const Adjacency& a : target_.Neighbors(anchor_image)) {
      ++nodes_expanded_;
      if (checker_.Check()) {
        deadline_hit_ = true;
        return false;
      }
      NodeId t = a.neighbor;
      if (target_used_[t] || !Feasible(p, t)) continue;
      map_[p] = t;
      target_used_[t] = true;
      bool exhausted = Recurse(depth + 1, fn);
      target_used_[t] = false;
      map_[p] = kInvalidNode;
      if (!exhausted) return false;
    }
  }
  return true;
}

bool Vf2Matcher::Exists() {
  if (pattern_.NodeCount() > target_.NodeCount() ||
      pattern_.EdgeCount() > target_.EdgeCount()) {
    return false;
  }
  bool found = false;
  ForEach([&found](const NodeMapping&) {
    found = true;
    return false;  // stop at the first match
  });
  return found;
}

size_t Vf2Matcher::Count(size_t limit) {
  size_t count = 0;
  ForEach([&count, limit](const NodeMapping&) {
    ++count;
    return count < limit;
  });
  return count;
}

bool Vf2Matcher::ForEach(const std::function<bool(const NodeMapping&)>& fn) {
  if (pattern_.NodeCount() == 0 ||
      pattern_.NodeCount() > target_.NodeCount() ||
      pattern_.EdgeCount() > target_.EdgeCount()) {
    return true;  // empty search space, trivially exhausted
  }
  std::fill(map_.begin(), map_.end(), kInvalidNode);
  std::fill(target_used_.begin(), target_used_.end(), false);
  deadline_hit_ = false;
  checker_ = DeadlineChecker(deadline_);
  return Recurse(0, fn);
}

bool IsSubgraphIsomorphic(const Graph& pattern, const Graph& target) {
  return Vf2Matcher(pattern, target).Exists();
}

bool IsSubgraphIsomorphic(const Graph& pattern, const Graph& target,
                          const Deadline& deadline, bool* deadline_hit,
                          size_t* nodes_expanded) {
  Vf2Matcher matcher(pattern, target);
  matcher.SetDeadline(deadline);
  bool found = matcher.Exists();
  if (deadline_hit != nullptr) *deadline_hit = matcher.deadline_hit();
  if (nodes_expanded != nullptr) *nodes_expanded += matcher.nodes_expanded();
  return found;
}

bool AreIsomorphic(const Graph& a, const Graph& b) {
  if (a.NodeCount() != b.NodeCount() || a.EdgeCount() != b.EdgeCount()) {
    return false;
  }
  // Equal sizes + injective monomorphism ⇒ isomorphism.
  return IsSubgraphIsomorphic(a, b);
}

}  // namespace prague
