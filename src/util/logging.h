// Minimal leveled logging to stderr. Benchmarks and examples use this for
// progress lines; the core library itself logs nothing on success paths.

#ifndef PRAGUE_UTIL_LOGGING_H_
#define PRAGUE_UTIL_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace prague {

/// Severity of a log line.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Global log threshold; lines below it are discarded.
LogLevel GetLogLevel();
/// \brief Sets the global log threshold.
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define PRAGUE_LOG(level)                                              \
  if (::prague::LogLevel::k##level < ::prague::GetLogLevel()) {        \
  } else                                                               \
    ::prague::internal::LogMessage(::prague::LogLevel::k##level,       \
                                   __FILE__, __LINE__)                 \
        .stream()

}  // namespace prague

#endif  // PRAGUE_UTIL_LOGGING_H_
