// praguedb — command-line data-preparation and batch-query tool.
//
//   praguedb gen   (aids|synth) <count> <out.db> [seed] [--bonds]
//   praguedb mine  <db> [alpha] [max_edges]
//   praguedb index <db> <out.idx> [alpha] [beta]
//   praguedb info  <index.idx>
//   praguedb query <db> <index.idx> <queries.db> [sigma] [threads]
//   praguedb sample <db> <count> <edges> <out.db> [seed]
//   praguedb append <db> <index.idx> <new.db> <alpha> [out.db out.idx]
//   praguedb stats <db>
//   praguedb run   <db> <index.idx> "<pattern>" [sigma] — e.g.
//                  "(a:C)-(b:C), (b)-(c:S)" (see query/pattern_parser.h)
//
// Databases and query files use the gSpan text format (`t # id / v / e`
// lines); indexes use the PRAGUE_INDEX format of index_io. The `query`
// subcommand replays each query graph through a PragueSession
// edge-at-a-time (exactly like the GUI) and prints one summary row per
// query.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/prague_session.h"
#include "datasets/aids_generator.h"
#include "datasets/query_workload.h"
#include "datasets/synthetic_generator.h"
#include "graph/graph_io.h"
#include "graph/statistics.h"
#include "index/index_io.h"
#include "index/index_maintenance.h"
#include "core/explain.h"
#include "query/pattern_parser.h"
#include "util/bytes.h"
#include "util/stopwatch.h"

using namespace prague;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  praguedb gen   (aids|synth) <count> <out.db> [seed] [--bonds]\n"
      "  praguedb mine  <db> [alpha=0.1] [max_edges=8]\n"
      "  praguedb index <db> <out.idx> [alpha=0.1] [beta=4]\n"
      "  praguedb info  <index.idx>\n"
      "  praguedb query <db> <index.idx> <queries.db> [sigma=3] "
      "[threads=1]\n"
      "  praguedb sample <db> <count> <edges> <out.db> [seed]\n"
      "  praguedb append <db> <index.idx> <new.db> <alpha> "
      "[out.db out.idx]\n"
      "  praguedb stats <db>\n"
      "  praguedb run   <db> <index.idx> \"<pattern>\" [sigma] [--explain]\n");
  return 2;
}

int Fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

int CmdGen(int argc, char** argv) {
  if (argc < 4) return Usage();
  std::string kind = argv[1];
  size_t count = std::strtoul(argv[2], nullptr, 10);
  std::string out = argv[3];
  uint64_t seed = argc > 4 && argv[4][0] != '-'
                      ? std::strtoull(argv[4], nullptr, 10)
                      : 42;
  bool bonds = false;
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "--bonds") == 0) bonds = true;
  }
  GraphDatabase db;
  if (kind == "aids") {
    AidsGeneratorConfig config;
    config.graph_count = count;
    config.seed = seed;
    config.bond_labels = bonds;
    db = GenerateAidsLikeDatabase(config);
  } else if (kind == "synth") {
    SyntheticGeneratorConfig config;
    config.graph_count = count;
    config.seed = seed;
    db = GenerateSyntheticDatabase(config);
  } else {
    return Usage();
  }
  if (Status st = WriteDatabaseToFile(db, out); !st.ok()) return Fail(st);
  std::printf("wrote %zu graphs (avg %.1f nodes / %.1f edges) to %s\n",
              db.size(), db.AverageNodeCount(), db.AverageEdgeCount(),
              out.c_str());
  return 0;
}

int CmdMine(int argc, char** argv) {
  if (argc < 2) return Usage();
  Result<GraphDatabase> db = ReadDatabaseFromFile(argv[1]);
  if (!db.ok()) return Fail(db.status());
  MiningConfig config;
  if (argc > 2) config.min_support_ratio = std::strtod(argv[2], nullptr);
  if (argc > 3) config.max_fragment_edges = std::strtoul(argv[3], nullptr, 10);
  Stopwatch timer;
  Result<MiningResult> mined = MineFragments(*db, config);
  if (!mined.ok()) return Fail(mined.status());
  std::printf(
      "mined %s in %.2fs (alpha=%.3f, min support %zu):\n"
      "  frequent fragments: %zu\n"
      "  DIFs:               %zu\n"
      "  duplicate growth paths pruned: %zu\n",
      argv[1], timer.ElapsedSeconds(), config.min_support_ratio,
      mined->min_support, mined->frequent.size(), mined->difs.size(),
      mined->stats.pruned_non_minimal);
  return 0;
}

int CmdIndex(int argc, char** argv) {
  if (argc < 3) return Usage();
  Result<GraphDatabase> db = ReadDatabaseFromFile(argv[1]);
  if (!db.ok()) return Fail(db.status());
  MiningConfig mining;
  A2fConfig a2f;
  if (argc > 3) mining.min_support_ratio = std::strtod(argv[3], nullptr);
  if (argc > 4) a2f.beta = std::strtoul(argv[4], nullptr, 10);
  Stopwatch timer;
  Result<ActionAwareIndexes> indexes =
      BuildActionAwareIndexes(*db, mining, a2f);
  if (!indexes.ok()) return Fail(indexes.status());
  if (Status st = IndexSerializer::SaveToFile(*indexes, argv[2]); !st.ok()) {
    return Fail(st);
  }
  std::printf(
      "built indexes in %.2fs: A2F %zu fragments, A2I %zu DIFs, %s; "
      "saved to %s\n",
      timer.ElapsedSeconds(), indexes->a2f.VertexCount(),
      indexes->a2i.EntryCount(),
      HumanBytes(indexes->StorageBytes()).c_str(), argv[2]);
  return 0;
}

int CmdInfo(int argc, char** argv) {
  if (argc < 2) return Usage();
  Result<ActionAwareIndexes> indexes = IndexSerializer::LoadFromFile(argv[1]);
  if (!indexes.ok()) return Fail(indexes.status());
  const A2FIndex& a2f = indexes->a2f;
  std::printf(
      "%s:\n"
      "  min support:  %zu\n"
      "  A2F vertices: %zu (MF %zu / DF %zu, beta=%zu, %zu clusters)\n"
      "  A2I entries:  %zu\n"
      "  storage:      %s (delId-compressed)\n",
      argv[1], indexes->min_support, a2f.VertexCount(), a2f.MfVertexCount(),
      a2f.DfVertexCount(), a2f.beta(), a2f.clusters().size(),
      indexes->a2i.EntryCount(),
      HumanBytes(indexes->StorageBytes()).c_str());
  return 0;
}

int CmdQuery(int argc, char** argv) {
  if (argc < 4) return Usage();
  Result<GraphDatabase> db = ReadDatabaseFromFile(argv[1]);
  if (!db.ok()) return Fail(db.status());
  Result<ActionAwareIndexes> indexes = IndexSerializer::LoadFromFile(argv[2]);
  if (!indexes.ok()) return Fail(indexes.status());
  Result<GraphDatabase> queries = ReadDatabaseFromFile(argv[3]);
  if (!queries.ok()) return Fail(queries.status());
  PragueConfig config;
  if (argc > 4) config.sigma = std::atoi(argv[4]);
  if (argc > 5) {
    config.verification_threads = std::strtoul(argv[5], nullptr, 10);
  }

  // Query label names must map onto database label ids.
  std::printf("%-6s %-4s %-10s %-8s %-8s %-10s\n", "query", "|q|", "mode",
              "matches", "best_d", "SRT(ms)");
  for (GraphId qid = 0; qid < queries->size(); ++qid) {
    const Graph& raw = queries->graph(qid);
    PragueSession session(&db.value(), &indexes.value(), config);
    std::vector<NodeId> node_map(raw.NodeCount(), kInvalidNode);
    bool ok = true;
    for (EdgeId e : DefaultFormulationSequence(raw)) {
      const Edge& edge = raw.GetEdge(e);
      for (NodeId n : {edge.u, edge.v}) {
        if (node_map[n] != kInvalidNode) continue;
        Result<NodeId> mapped = session.AddNodeByName(
            queries->labels().Name(raw.NodeLabel(n)));
        if (!mapped.ok()) {
          std::fprintf(stderr, "query %u: %s\n", qid,
                       mapped.status().ToString().c_str());
          ok = false;
          break;
        }
        node_map[n] = *mapped;
      }
      if (!ok) break;
      if (!session.AddEdge(node_map[edge.u], node_map[edge.v], edge.label)
               .ok()) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    RunStats stats;
    Result<QueryResults> results = session.Run(&stats);
    if (!results.ok()) {
      std::fprintf(stderr, "query %u: %s\n", qid,
                   results.status().ToString().c_str());
      continue;
    }
    if (results->similarity) {
      int best = results->similar.empty() ? -1
                                          : results->similar.front().distance;
      std::printf("%-6u %-4zu %-10s %-8zu %-8d %-10.3f\n", qid,
                  raw.EdgeCount(), "similar", results->similar.size(), best,
                  stats.srt_seconds * 1000);
    } else {
      std::printf("%-6u %-4zu %-10s %-8zu %-8d %-10.3f\n", qid,
                  raw.EdgeCount(), "exact", results->exact.size(), 0,
                  stats.srt_seconds * 1000);
    }
  }
  return 0;
}

// Samples query-sized connected subgraphs from a database — the input
// `praguedb query` expects.
int CmdSample(int argc, char** argv) {
  if (argc < 5) return Usage();
  Result<GraphDatabase> db = ReadDatabaseFromFile(argv[1]);
  if (!db.ok()) return Fail(db.status());
  size_t count = std::strtoul(argv[2], nullptr, 10);
  size_t edges = std::strtoul(argv[3], nullptr, 10);
  uint64_t seed = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 1;
  WorkloadGenerator workload(&db.value(), seed);
  GraphDatabase out;
  // Share the source dictionary so label names round-trip.
  for (const std::string& name : db->labels().names()) {
    out.mutable_labels()->Intern(name);
  }
  for (size_t i = 0; i < count; ++i) {
    Result<VisualQuerySpec> spec =
        workload.ContainmentQuery(edges, "q" + std::to_string(i));
    if (!spec.ok()) return Fail(spec.status());
    out.Add(spec->graph);
  }
  if (Status st = WriteDatabaseToFile(out, argv[4]); !st.ok()) {
    return Fail(st);
  }
  std::printf("wrote %zu %zu-edge query graphs to %s\n", count, edges,
              argv[4]);
  return 0;
}

// Incrementally appends new graphs to an indexed database
// (index_maintenance.h) and reports drift.
int CmdAppend(int argc, char** argv) {
  if (argc < 5) return Usage();
  Result<GraphDatabase> db = ReadDatabaseFromFile(argv[1]);
  if (!db.ok()) return Fail(db.status());
  Result<ActionAwareIndexes> indexes = IndexSerializer::LoadFromFile(argv[2]);
  if (!indexes.ok()) return Fail(indexes.status());
  Result<GraphDatabase> incoming = ReadDatabaseFromFile(argv[3]);
  if (!incoming.ok()) return Fail(incoming.status());
  double alpha = std::strtod(argv[4], nullptr);

  // Re-intern incoming labels against the base dictionary.
  std::vector<Graph> extra;
  for (GraphId gid = 0; gid < incoming->size(); ++gid) {
    const Graph& g = incoming->graph(gid);
    GraphBuilder b;
    for (NodeId n = 0; n < g.NodeCount(); ++n) {
      b.AddNode(db->mutable_labels()->Intern(
          incoming->labels().Name(g.NodeLabel(n))));
    }
    for (const Edge& e : g.edges()) (void)b.AddEdge(e.u, e.v, e.label);
    extra.push_back(std::move(b).Build());
  }
  Stopwatch timer;
  Result<MaintenanceReport> report =
      AppendGraphs(&db.value(), std::move(extra), &indexes.value(), alpha);
  if (!report.ok()) return Fail(report.status());
  std::printf(
      "appended %zu graphs in %.2fs (probes %zu, pruned %zu)\n"
      "new min support %zu; drift: %zu frequent below threshold, %zu DIFs "
      "above\n%s\n",
      report->graphs_added, timer.ElapsedSeconds(), report->probes,
      report->pruned_probes, report->new_min_support,
      report->frequent_below_threshold, report->difs_above_threshold,
      report->remine_recommended
          ? "recommendation: schedule a full re-mine"
          : "indexes remain classification-exact");
  if (argc > 6) {
    if (Status st = WriteDatabaseToFile(*db, argv[5]); !st.ok()) {
      return Fail(st);
    }
    if (Status st = IndexSerializer::SaveToFile(*indexes, argv[6]);
        !st.ok()) {
      return Fail(st);
    }
    std::printf("wrote %s and %s\n", argv[5], argv[6]);
  }
  return 0;
}

int CmdStats(int argc, char** argv) {
  if (argc < 2) return Usage();
  Result<GraphDatabase> db = ReadDatabaseFromFile(argv[1]);
  if (!db.ok()) return Fail(db.status());
  DatabaseStatistics stats = ComputeStatistics(*db);
  std::printf("%s", stats.ToString(db->labels()).c_str());
  return 0;
}

// Executes one textual pattern through a PragueSession, edge by edge in
// the written order — exactly as if drawn in the GUI.
int CmdRun(int argc, char** argv) {
  if (argc < 4) return Usage();
  Result<GraphDatabase> db = ReadDatabaseFromFile(argv[1]);
  if (!db.ok()) return Fail(db.status());
  Result<ActionAwareIndexes> indexes = IndexSerializer::LoadFromFile(argv[2]);
  if (!indexes.ok()) return Fail(indexes.status());
  Result<ParsedPattern> pattern =
      ParsePatternStrict(argv[3], db->labels());
  if (!pattern.ok()) return Fail(pattern.status());
  PragueConfig config;
  bool explain = false;
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "--explain") == 0) {
      explain = true;
    } else {
      config.sigma = std::atoi(argv[i]);
    }
  }

  PragueSession session(&db.value(), &indexes.value(), config);
  std::vector<NodeId> ids;
  for (NodeId n = 0; n < pattern->graph.NodeCount(); ++n) {
    ids.push_back(session.AddNode(pattern->graph.NodeLabel(n)));
  }
  for (EdgeId e : pattern->sequence) {
    const Edge& edge = pattern->graph.GetEdge(e);
    Result<StepReport> report =
        session.AddEdge(ids[edge.u], ids[edge.v], edge.label);
    if (!report.ok()) return Fail(report.status());
    std::printf("e%-2d |Rq|=%-8zu%s\n", report->edge,
                report->exact_candidates,
                report->similarity_mode ? "  (similarity mode)" : "");
  }
  RunStats stats;
  Result<QueryResults> results = session.Run(&stats);
  if (!results.ok()) return Fail(results.status());
  std::printf("SRT %.3f ms\n", stats.srt_seconds * 1000);
  if (!results->similarity) {
    std::printf("%zu exact matches:", results->exact.size());
    size_t shown = 0;
    for (GraphId gid : results->exact) {
      if (++shown > 25) {
        std::printf(" ...");
        break;
      }
      std::printf(" g%u", gid);
    }
    std::printf("\n");
  } else {
    std::printf("%zu approximate matches (sigma=%d):\n",
                results->similar.size(), config.sigma);
    size_t shown = 0;
    for (const SimilarMatch& m : results->similar) {
      if (++shown > 25) {
        std::printf("  ...\n");
        break;
      }
      std::printf("  g%-8u distance=%d\n", m.gid, m.distance);
    }
    if (explain && !results->similar.empty()) {
      GraphId best = results->similar.front().gid;
      const Graph& q = session.query().CurrentGraph();
      Result<MatchExplanation> why = ExplainMatch(q, db->graph(best));
      if (why.ok()) {
        std::printf("why g%u matches:\n%s", best,
                    ExplanationToString(*why, q, db->labels()).c_str());
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  if (cmd == "gen") return CmdGen(argc - 1, argv + 1);
  if (cmd == "mine") return CmdMine(argc - 1, argv + 1);
  if (cmd == "index") return CmdIndex(argc - 1, argv + 1);
  if (cmd == "info") return CmdInfo(argc - 1, argv + 1);
  if (cmd == "query") return CmdQuery(argc - 1, argv + 1);
  if (cmd == "sample") return CmdSample(argc - 1, argv + 1);
  if (cmd == "append") return CmdAppend(argc - 1, argv + 1);
  if (cmd == "stats") return CmdStats(argc - 1, argv + 1);
  if (cmd == "run") return CmdRun(argc - 1, argv + 1);
  return Usage();
}
