// SPIG cost scaling (Section V-B analysis): how SPIG-set size and
// per-step construction time grow with query size |q|.
//
// The worst case is C(n-1, k-1) vertices per level (all edges distinct);
// real queries share labels, keeping counts far below that. This bench
// sweeps |q| = 4..12 over sampled AIDS-like queries and reports total
// SPIG vertices, the worst single-step construction time, and the level-k
// totals against the C(n,k) bound of Lemma 1 — all of which must stay
// comfortably below the ~2 s GUI latency for the paradigm to work.

#include <cstdio>

#include "bench_common.h"
#include "core/prague_session.h"

using namespace prague;
using namespace prague::bench;

namespace {

size_t Binomial(size_t n, size_t k) {
  if (k > n) return 0;
  size_t r = 1;
  for (size_t i = 0; i < k; ++i) r = r * (n - i) / (i + 1);
  return r;
}

}  // namespace

int main() {
  Banner("SPIG scaling: vertices and construction cost vs |q|",
         "AIDS-like dataset; Lemma 1 bound = sum_k C(n,k) = 2^n - 1");
  Workbench bench = BuildAidsWorkbench(AidsGraphCount() / 2);
  WorkloadGenerator workload(&bench.db, 99);

  TablePrinter table({"|q|", "SPIG vertices", "Lemma-1 bound",
                      "utilization", "worst step (ms)", "total (ms)"});
  for (size_t edges = 4; edges <= 12; ++edges) {
    Result<VisualQuerySpec> spec =
        workload.ContainmentQuery(edges, "s" + std::to_string(edges));
    if (!spec.ok()) {
      std::fprintf(stderr, "no host graph with %zu edges; stopping\n", edges);
      break;
    }
    PragueSession session(&bench.db, &bench.indexes);
    std::vector<NodeId> node_map(spec->graph.NodeCount(), kInvalidNode);
    double worst_step = 0, total = 0;
    for (EdgeId e : spec->sequence) {
      const Edge& edge = spec->graph.GetEdge(e);
      for (NodeId n : {edge.u, edge.v}) {
        if (node_map[n] == kInvalidNode) {
          node_map[n] = session.AddNode(spec->graph.NodeLabel(n));
        }
      }
      Result<StepReport> report =
          session.AddEdge(node_map[edge.u], node_map[edge.v], edge.label);
      if (!report.ok()) return 1;
      worst_step = std::max(worst_step, report->spig_seconds);
      total += report->spig_seconds;
    }
    size_t vertices = session.spigs().TotalVertexCount();
    size_t bound = (size_t{1} << edges) - 1;
    // Per-level check of Lemma 1 while we are here.
    for (size_t k = 1; k <= edges; ++k) {
      if (session.spigs().VertexCountAtLevel(static_cast<int>(k)) >
          Binomial(edges, k)) {
        std::fprintf(stderr, "Lemma 1 violated at level %zu!\n", k);
        return 1;
      }
    }
    table.AddRow({std::to_string(edges), std::to_string(vertices),
                  std::to_string(bound),
                  Fmt(100.0 * static_cast<double>(vertices) /
                          static_cast<double>(bound),
                      1) + "%",
                  FmtMs(worst_step), FmtMs(total)});
  }
  table.Print();
  std::printf(
      "\nshape check: vertex counts track 2^|q| but stay well under the "
      "bound; even the worst step is orders of magnitude below the ~2s GUI "
      "latency.\n");
  return 0;
}
