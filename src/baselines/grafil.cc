#include "baselines/grafil.h"

#include <algorithm>
#include <functional>
#include <span>
#include <map>
#include <vector>

#include "graph/subgraph_ops.h"
#include "util/deadline.h"

namespace prague {

namespace {

// One distinct query feature: index id, multiplicity (number of edge
// subsets realizing it), and the union of edges its occurrences touch.
struct QueryFeature {
  uint32_t feature_id = 0;
  int multiplicity = 0;
  std::vector<EdgeMask> occurrence_masks;
};

// Enumerates C(n, k) subsets of the query's edges as masks. Returns false
// if `checker` tripped before the enumeration finished.
bool ForEachSigmaSubset(size_t edge_count, int sigma,
                        const std::function<void(EdgeMask)>& fn,
                        DeadlineChecker* checker) {
  std::vector<int> pick(sigma);
  std::function<bool(int, int, EdgeMask)> rec = [&](int start, int depth,
                                                    EdgeMask mask) -> bool {
    if (checker->Check()) return false;
    if (depth == sigma) {
      fn(mask);
      return true;
    }
    for (int e = start; e < static_cast<int>(edge_count); ++e) {
      if (!rec(e + 1, depth + 1, mask | EdgeBit(static_cast<EdgeId>(e)))) {
        return false;
      }
    }
    return true;
  };
  return rec(0, 0, 0);
}

}  // namespace

IdSet GrafilLikeEngine::Filter(const Graph& q, int sigma,
                               const Deadline& deadline,
                               bool* truncated) const {
  // On expiry the filter degrades to the trivially sound superset: every
  // database graph. A partially filtered set could drop true answers.
  const auto give_up = [&]() {
    if (truncated != nullptr) *truncated = true;
    return db_->AllIds();
  };
  if (sigma >= static_cast<int>(q.EdgeCount())) return db_->AllIds();
  QuerySubgraphCatalog catalog =
      QuerySubgraphCatalog::Build(q, index_->max_feature_edges());
  DeadlineChecker checker(deadline);

  // Group occurrences by feature id.
  std::map<uint32_t, QueryFeature> features;
  for (const QuerySubgraphCatalog::Entry& entry : catalog.entries()) {
    std::optional<uint32_t> fid = index_->Lookup(entry.code);
    if (!fid) continue;
    QueryFeature& f = features[*fid];
    f.feature_id = *fid;
    ++f.multiplicity;
    f.occurrence_masks.push_back(entry.mask);
  }
  if (features.empty()) return db_->AllIds();  // no filtering power

  int total_occurrences = 0;
  for (const auto& [fid, f] : features) total_occurrences += f.multiplicity;

  // d_max: the most occurrences any σ-edge deletion can destroy.
  int d_max = 0;
  bool complete = ForEachSigmaSubset(
      q.EdgeCount(), sigma,
      [&](EdgeMask deleted) {
        int destroyed = 0;
        for (const auto& [fid, f] : features) {
          for (EdgeMask occ : f.occurrence_masks) {
            if (occ & deleted) ++destroyed;
          }
        }
        d_max = std::max(d_max, destroyed);
      },
      &checker);
  if (!complete) return give_up();

  // Count-based hit accounting (Grafil's rule): graph g keeps
  // min(cnt_q(f), cnt_g(f)) occurrences of feature f, where cnt_g is the
  // indexed per-graph embedding count.
  std::vector<int> hits(db_->size(), 0);
  for (const auto& [fid, f] : features) {
    std::span<const GraphId> gids = index_->FsgIds(fid).span();
    const std::vector<uint32_t>& counts = index_->Counts(fid);
    for (size_t i = 0; i < gids.size(); ++i) {
      hits[gids[i]] += std::min<int>(f.multiplicity,
                                     static_cast<int>(counts[i]));
    }
  }
  std::vector<GraphId> out;
  for (GraphId gid = 0; gid < db_->size(); ++gid) {
    if (checker.Check()) return give_up();
    if (total_occurrences - hits[gid] <= d_max) out.push_back(gid);
  }
  return IdSet(std::move(out));
}

}  // namespace prague
