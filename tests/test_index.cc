// Action-aware indexes: A2F DAG structure, delId compression round-trip,
// MF/DF split and clusters, A2I ordering, serialization.

#include <gtest/gtest.h>

#include <sstream>

#include <algorithm>

#include "graph/vf2.h"
#include "index/action_aware_index.h"
#include "index/index_io.h"
#include "test_fixtures.h"

namespace prague {
namespace {

TEST(A2fIndexTest, LookupByCanonicalCode) {
  const auto& fixture = testing::TinyFixture::Get();
  for (const MinedFragment& f : fixture.mined.frequent) {
    std::optional<A2fId> id = fixture.indexes.a2f.Lookup(f.code);
    ASSERT_TRUE(id.has_value()) << f.code;
    EXPECT_EQ(fixture.indexes.a2f.FsgIds(*id), f.fsg_ids);
  }
  EXPECT_FALSE(fixture.indexes.a2f.Lookup("0,1,99,0,99;").has_value());
}

TEST(A2fIndexTest, DagEdgesAreSizePlusOneSubgraphs) {
  const auto& fixture = testing::TinyFixture::Get();
  const A2FIndex& a2f = fixture.indexes.a2f;
  for (A2fId id = 0; id < a2f.VertexCount(); ++id) {
    const A2fVertex& v = a2f.vertex(id);
    for (A2fId c : v.children) {
      const A2fVertex& child = a2f.vertex(c);
      EXPECT_EQ(child.size(), v.size() + 1);
      EXPECT_TRUE(IsSubgraphIsomorphic(v.fragment, child.fragment));
    }
    for (A2fId p : v.parents) {
      EXPECT_EQ(a2f.vertex(p).size() + 1, v.size());
    }
  }
}

TEST(A2fIndexTest, FsgIdsShrinkUpward) {
  // f' ⊂ f  ⇒  fsgIds(f) ⊆ fsgIds(f') — the identity delId exploits.
  const auto& fixture = testing::TinyFixture::Get();
  const A2FIndex& a2f = fixture.indexes.a2f;
  for (A2fId id = 0; id < a2f.VertexCount(); ++id) {
    const A2fVertex& v = a2f.vertex(id);
    for (A2fId c : v.children) {
      EXPECT_TRUE(a2f.vertex(c).fsg_ids.IsSubsetOf(v.fsg_ids));
    }
  }
}

TEST(A2fIndexTest, DelIdReconstructionRoundTrip) {
  const auto& fixture = testing::AidsFixture::Get();
  A2FIndex copy = fixture.indexes.a2f;
  // Scramble the full sets, then reconstruct from delIds alone.
  ASSERT_TRUE(copy.ReconstructFromDelIds());
  for (A2fId id = 0; id < copy.VertexCount(); ++id) {
    EXPECT_EQ(copy.FsgIds(id), fixture.indexes.a2f.FsgIds(id)) << id;
  }
}

TEST(A2fIndexTest, DelIdsNoLargerThanFullSets) {
  const auto& fixture = testing::AidsFixture::Get();
  size_t del_total = 0, full_total = 0;
  const A2FIndex& a2f = fixture.indexes.a2f;
  for (A2fId id = 0; id < a2f.VertexCount(); ++id) {
    del_total += a2f.vertex(id).del_ids.size();
    full_total += a2f.vertex(id).fsg_ids.size();
    EXPECT_TRUE(a2f.vertex(id).del_ids.IsSubsetOf(a2f.vertex(id).fsg_ids));
  }
  EXPECT_LE(del_total, full_total);
  EXPECT_LE(a2f.StorageBytes(), a2f.UncompressedBytes());
}

TEST(A2fIndexTest, MfDfSplitByBeta) {
  const auto& fixture = testing::AidsFixture::Get();
  const A2FIndex& a2f = fixture.indexes.a2f;
  size_t mf = 0;
  for (A2fId id = 0; id < a2f.VertexCount(); ++id) {
    const A2fVertex& v = a2f.vertex(id);
    EXPECT_EQ(v.in_mf, v.size() <= a2f.beta());
    if (v.in_mf) ++mf;
  }
  EXPECT_EQ(mf, a2f.MfVertexCount());
  EXPECT_EQ(a2f.VertexCount() - mf, a2f.DfVertexCount());
}

TEST(A2fIndexTest, ClustersRootedAtBetaPlusOne) {
  const auto& fixture = testing::AidsFixture::Get();
  const A2FIndex& a2f = fixture.indexes.a2f;
  for (const FragmentCluster& c : a2f.clusters()) {
    EXPECT_EQ(a2f.vertex(c.root).size(), a2f.beta() + 1);
    for (A2fId m : c.members) {
      EXPECT_GT(a2f.vertex(m).size(), a2f.beta());
    }
  }
}

TEST(A2fIndexTest, LeafClusterListsPointToChildClusters) {
  const auto& fixture = testing::AidsFixture::Get();
  const A2FIndex& a2f = fixture.indexes.a2f;
  for (A2fId id = 0; id < a2f.VertexCount(); ++id) {
    if (a2f.vertex(id).size() != a2f.beta()) {
      continue;
    }
    for (uint32_t cid : a2f.ClusterList(id)) {
      ASSERT_LT(cid, a2f.clusters().size());
      A2fId root = a2f.clusters()[cid].root;
      // The leaf must be a subgraph (parent) of the cluster root.
      const auto& parents = a2f.vertex(root).parents;
      EXPECT_NE(std::find(parents.begin(), parents.end(), id), parents.end());
    }
  }
}

TEST(A2iIndexTest, EntriesAscendingBySizeAndLookup) {
  const auto& fixture = testing::TinyFixture::Get();
  const A2IIndex& a2i = fixture.indexes.a2i;
  for (A2iId id = 0; id + 1 < a2i.EntryCount(); ++id) {
    EXPECT_LE(a2i.entry(id).size(), a2i.entry(id + 1).size());
  }
  for (A2iId id = 0; id < a2i.EntryCount(); ++id) {
    std::optional<A2iId> found = a2i.Lookup(a2i.entry(id).code);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, id);
  }
}

TEST(IndexIoTest, SaveLoadRoundTrip) {
  const auto& fixture = testing::TinyFixture::Get();
  std::ostringstream out;
  ASSERT_TRUE(IndexSerializer::Save(fixture.indexes, &out).ok());
  std::istringstream in(out.str());
  Result<ActionAwareIndexes> loaded = IndexSerializer::Load(&in);
  ASSERT_TRUE(loaded.ok());
  const A2FIndex& a = fixture.indexes.a2f;
  const A2FIndex& b = loaded->a2f;
  ASSERT_EQ(a.VertexCount(), b.VertexCount());
  for (A2fId id = 0; id < a.VertexCount(); ++id) {
    EXPECT_EQ(a.vertex(id).code, b.vertex(id).code);
    EXPECT_EQ(a.FsgIds(id), b.FsgIds(id)) << id;
    EXPECT_EQ(a.vertex(id).in_mf, b.vertex(id).in_mf);
  }
  ASSERT_EQ(fixture.indexes.a2i.EntryCount(), loaded->a2i.EntryCount());
  for (A2iId id = 0; id < loaded->a2i.EntryCount(); ++id) {
    EXPECT_EQ(fixture.indexes.a2i.FsgIds(id), loaded->a2i.FsgIds(id));
  }
  EXPECT_EQ(loaded->min_support, fixture.indexes.min_support);
}

TEST(IndexIoTest, LoadRejectsGarbage) {
  std::istringstream in("NOT_AN_INDEX");
  EXPECT_FALSE(IndexSerializer::Load(&in).ok());
}

TEST(IndexIoTest, FileRoundTrip) {
  const auto& fixture = testing::TinyFixture::Get();
  std::string path = ::testing::TempDir() + "/prague_index_test.idx";
  ASSERT_TRUE(IndexSerializer::SaveToFile(fixture.indexes, path).ok());
  Result<ActionAwareIndexes> loaded = IndexSerializer::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->a2f.VertexCount(), fixture.indexes.a2f.VertexCount());
}

TEST(ActionAwareIndexTest, BuildFromDatabaseEndToEnd) {
  GraphDatabase db = testing::TinyDatabase();
  MiningConfig mining;
  mining.min_support_ratio = 0.34;
  A2fConfig a2f;
  a2f.beta = 2;
  Result<ActionAwareIndexes> built = BuildActionAwareIndexes(db, mining, a2f);
  ASSERT_TRUE(built.ok());
  EXPECT_GT(built->a2f.VertexCount(), 0u);
  EXPECT_GT(built->StorageBytes(), 0u);
}

}  // namespace
}  // namespace prague
