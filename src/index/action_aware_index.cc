#include "index/action_aware_index.h"

namespace prague {

Result<ActionAwareIndexes> BuildActionAwareIndexes(const GraphDatabase& db,
                                                   const MiningConfig& mining,
                                                   const A2fConfig& a2f) {
  Result<MiningResult> mined = MineFragments(db, mining);
  if (!mined.ok()) return mined.status();
  return BuildActionAwareIndexes(*mined, a2f);
}

ActionAwareIndexes BuildActionAwareIndexes(const MiningResult& mined,
                                           const A2fConfig& a2f) {
  ActionAwareIndexes out;
  out.a2f = A2FIndex::Build(mined.frequent, a2f);
  out.a2i = A2IIndex::Build(mined.difs);
  out.mining_stats = mined.stats;
  out.min_support = mined.min_support;
  return out;
}

}  // namespace prague
