#include "util/id_set.h"

#include <algorithm>

namespace prague {

namespace {

// Per-thread output buffer for the in-place operations: the result is
// built here and swapped into ids_, recycling capacity across calls.
std::vector<GraphId>& ScratchBuffer() {
  thread_local std::vector<GraphId> scratch;
  return scratch;
}

// Galloping intersection: for each id of the small side, exponential
// search forward through the large side from the previous match position.
void GallopIntersect(const std::vector<GraphId>& small,
                     const std::vector<GraphId>& large,
                     std::vector<GraphId>* out) {
  const size_t n = large.size();
  size_t pos = 0;
  for (GraphId id : small) {
    size_t lo = pos;
    size_t step = 1;
    while (lo + step < n && large[lo + step] < id) {
      lo += step;
      step <<= 1;
    }
    size_t hi = std::min(n, lo + step + 1);
    pos = static_cast<size_t>(
        std::lower_bound(large.begin() + static_cast<ptrdiff_t>(lo),
                         large.begin() + static_cast<ptrdiff_t>(hi), id) -
        large.begin());
    if (pos == n) return;
    if (large[pos] == id) {
      out->push_back(id);
      ++pos;
    }
  }
}

// Intersection of two sorted vectors into `out` (cleared first), picking
// merge vs gallop by size ratio.
void IntersectInto(const std::vector<GraphId>& a,
                   const std::vector<GraphId>& b,
                   std::vector<GraphId>* out) {
  out->clear();
  const std::vector<GraphId>& small = a.size() <= b.size() ? a : b;
  const std::vector<GraphId>& large = a.size() <= b.size() ? b : a;
  if (small.empty()) return;
  out->reserve(small.size());
  if (large.size() / small.size() >= IdSet::kGallopRatio) {
    GallopIntersect(small, large, out);
  } else {
    std::set_intersection(small.begin(), small.end(), large.begin(),
                          large.end(), std::back_inserter(*out));
  }
}

}  // namespace

IdSet::IdSet(std::vector<GraphId> ids) : ids_(std::move(ids)) {
  std::sort(ids_.begin(), ids_.end());
  ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
}

IdSet::IdSet(std::initializer_list<GraphId> ids)
    : IdSet(std::vector<GraphId>(ids)) {}

IdSet IdSet::Universe(GraphId n) {
  IdSet out;
  out.ids_.resize(n);
  for (GraphId i = 0; i < n; ++i) out.ids_[i] = i;
  return out;
}

bool IdSet::Contains(GraphId id) const {
  return std::binary_search(ids_.begin(), ids_.end(), id);
}

void IdSet::Insert(GraphId id) {
  auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it == ids_.end() || *it != id) ids_.insert(it, id);
}

void IdSet::Erase(GraphId id) {
  auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it != ids_.end() && *it == id) ids_.erase(it);
}

IdSet IdSet::Intersect(const IdSet& other) const {
  IdSet out;
  IntersectInto(ids_, other.ids_, &out.ids_);
  return out;
}

IdSet IdSet::Union(const IdSet& other) const {
  IdSet out;
  out.ids_.reserve(ids_.size() + other.ids_.size());
  std::set_union(ids_.begin(), ids_.end(), other.ids_.begin(),
                 other.ids_.end(), std::back_inserter(out.ids_));
  return out;
}

IdSet IdSet::Subtract(const IdSet& other) const {
  IdSet out;
  out.ids_.reserve(ids_.size());
  std::set_difference(ids_.begin(), ids_.end(), other.ids_.begin(),
                      other.ids_.end(), std::back_inserter(out.ids_));
  return out;
}

void IdSet::IntersectWith(const IdSet& other) {
  std::vector<GraphId>& scratch = ScratchBuffer();
  IntersectInto(ids_, other.ids_, &scratch);
  ids_.swap(scratch);
}

void IdSet::UnionWith(const IdSet& other) {
  if (other.ids_.empty()) return;
  if (ids_.empty()) {
    ids_ = other.ids_;
    return;
  }
  std::vector<GraphId>& scratch = ScratchBuffer();
  scratch.clear();
  scratch.reserve(ids_.size() + other.ids_.size());
  std::set_union(ids_.begin(), ids_.end(), other.ids_.begin(),
                 other.ids_.end(), std::back_inserter(scratch));
  ids_.swap(scratch);
}

void IdSet::SubtractWith(const IdSet& other) {
  if (ids_.empty() || other.ids_.empty()) return;
  std::vector<GraphId>& scratch = ScratchBuffer();
  scratch.clear();
  scratch.reserve(ids_.size());
  std::set_difference(ids_.begin(), ids_.end(), other.ids_.begin(),
                      other.ids_.end(), std::back_inserter(scratch));
  ids_.swap(scratch);
}

IdSet IdSet::IntersectMany(std::vector<const IdSet*> sets) {
  sets.erase(std::remove(sets.begin(), sets.end(), nullptr), sets.end());
  if (sets.empty()) return IdSet();
  std::sort(sets.begin(), sets.end(), [](const IdSet* a, const IdSet* b) {
    return a->size() < b->size();
  });
  IdSet out = *sets.front();
  for (size_t i = 1; i < sets.size() && !out.empty(); ++i) {
    out.IntersectWith(*sets[i]);
  }
  return out;
}

bool IdSet::IsSubsetOf(const IdSet& other) const {
  return std::includes(other.ids_.begin(), other.ids_.end(), ids_.begin(),
                       ids_.end());
}

std::string IdSet::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < ids_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(ids_[i]);
  }
  out += "}";
  return out;
}

}  // namespace prague
