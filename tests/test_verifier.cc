// Verifier backends: the filtering verifier must agree with plain VF2 on
// every input while skipping provably impossible pairs, and sessions must
// return identical results with either backend.

#include <gtest/gtest.h>

#include <map>

#include "core/prague_session.h"
#include "datasets/query_workload.h"
#include "graph/verifier.h"
#include "test_fixtures.h"
#include "util/rng.h"

namespace prague {
namespace {

using testing::kC;
using testing::kN;
using testing::kS;

TEST(VerifierTest, FactoryNames) {
  EXPECT_NE(MakeVerifier("plain"), nullptr);
  EXPECT_NE(MakeVerifier("filtering"), nullptr);
  EXPECT_NE(MakeVerifier("unknown-defaults-to-plain"), nullptr);
}

TEST(VerifierTest, PlainCountsCalls) {
  PlainVerifier v;
  Graph pattern = testing::MakeGraph({kC, kS}, {{0, 1}});
  Graph target = testing::MakeGraph({kC, kS, kC}, {{0, 1}, {1, 2}});
  EXPECT_TRUE(v.Matches(pattern, target));
  EXPECT_EQ(v.stats().checks, 1u);
  EXPECT_EQ(v.stats().vf2_calls, 1u);
}

TEST(VerifierTest, FilteringRejectsMissingLabelWithoutVf2) {
  FilteringVerifier v;
  Graph pattern = testing::MakeGraph({kN, kN}, {{0, 1}});
  Graph target = testing::MakeGraph({kC, kS, kC}, {{0, 1}, {1, 2}});
  EXPECT_FALSE(v.Matches(pattern, target));
  EXPECT_EQ(v.stats().prefilter_hits, 1u);
  EXPECT_EQ(v.stats().vf2_calls, 0u);
}

TEST(VerifierTest, FilteringRejectsDegreeDeficitWithoutVf2) {
  // Pattern: C with 3 C-neighbors. Target: path of C (max degree 2).
  FilteringVerifier v;
  Graph pattern = testing::MakeGraph({kC, kC, kC, kC},
                                     {{0, 1}, {0, 2}, {0, 3}});
  Graph target = testing::MakeGraph({kC, kC, kC, kC, kC},
                                    {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  EXPECT_FALSE(v.Matches(pattern, target));
  EXPECT_EQ(v.stats().prefilter_hits, 1u);
  EXPECT_EQ(v.stats().vf2_calls, 0u);
}

TEST(VerifierTest, FilteringAgreesWithPlainOnRandomPairs) {
  const auto& fixture = testing::AidsFixture::Get();
  WorkloadGenerator workload(&fixture.db, 301);
  PlainVerifier plain;
  FilteringVerifier filtering;
  Rng rng(301);
  for (int trial = 0; trial < 40; ++trial) {
    Result<VisualQuerySpec> spec = workload.ContainmentQuery(
        3 + rng.Below(4), "v" + std::to_string(trial));
    ASSERT_TRUE(spec.ok());
    GraphId gid = static_cast<GraphId>(rng.Below(fixture.db.size()));
    const Graph& g = fixture.db.graph(gid);
    EXPECT_EQ(plain.Matches(spec->graph, g),
              filtering.Matches(spec->graph, g))
        << "trial " << trial;
  }
  // The prefilter must have earned its keep somewhere across 40 pairs.
  EXPECT_GT(filtering.stats().checks, 0u);
  EXPECT_LE(filtering.stats().vf2_calls, filtering.stats().checks);
}

TEST(VerifierTest, SessionsIdenticalAcrossBackends) {
  const auto& fixture = testing::AidsFixture::Get();
  WorkloadGenerator workload(&fixture.db, 303);
  Result<VisualQuerySpec> spec = workload.SimilarityQuery(6, 2, "vb");
  ASSERT_TRUE(spec.ok());
  auto run = [&](bool filtering) {
    PragueConfig config;
    config.sigma = 3;
    config.filtering_verifier = filtering;
    PragueSession session(fixture.snapshot, config);
    std::map<NodeId, NodeId> node_map;
    auto user_node = [&](NodeId n) {
      auto it = node_map.find(n);
      if (it != node_map.end()) return it->second;
      NodeId u = session.AddNode(spec->graph.NodeLabel(n));
      node_map.emplace(n, u);
      return u;
    };
    for (EdgeId e : spec->sequence) {
      const Edge& edge = spec->graph.GetEdge(e);
      if (!session.AddEdge(user_node(edge.u), user_node(edge.v), edge.label)
               .ok()) {
        std::abort();
      }
    }
    RunStats stats;
    Result<QueryResults> results = session.Run(&stats);
    if (!results.ok()) std::abort();
    return std::make_pair(*results, stats.similar.vf2_calls);
  };
  auto [plain_results, plain_calls] = run(false);
  auto [filtering_results, filtering_calls] = run(true);
  ASSERT_EQ(plain_results.similar.size(), filtering_results.similar.size());
  for (size_t i = 0; i < plain_results.similar.size(); ++i) {
    EXPECT_EQ(plain_results.similar[i], filtering_results.similar[i]);
  }
  EXPECT_LE(filtering_calls, plain_calls);
}

}  // namespace
}  // namespace prague
