// Leveled, structured logging to stderr (or a test sink).
//
// Two front-ends share one back-end:
//
//   PRAGUE_LOG(Warning) << "free-form text";            // stream style
//   PRAGUE_SLOG(Warning).Field("tenant", t) << "shed";  // structured style
//   PRAGUE_SLOG_EVERY(Warning, 2.0, 8).Field(...) ...   // + rate limited
//
// Fields are typed key=value pairs rendered either as `key=value` suffixes
// (text format) or as top-level JSON members (--log-format=json). A whole
// line is always emitted with one write so concurrent threads never shear
// output mid-line.
//
// PRAGUE_SLOG_EVERY applies a per-call-site token bucket: at most `per_sec`
// lines per second with a burst allowance, so a hostile client hammering a
// Warning path (bad frames, recv errors) cannot turn logging into an I/O
// stall. Suppressed lines are counted process-wide (SuppressedLogCount(),
// exported as `prague_log_suppressed_total`).

#ifndef PRAGUE_UTIL_LOGGING_H_
#define PRAGUE_UTIL_LOGGING_H_

#include <atomic>
#include <cstdint>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace prague {

/// Severity of a log line.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Output encoding of a log line.
enum class LogFormat {
  kText = 0,  ///< `[WARN file:line] message key=value`
  kJson = 1,  ///< `{"level":"WARN","src":"file:line","msg":"...","key":...}`
};

/// \brief Global log threshold; lines below it are discarded.
LogLevel GetLogLevel();
/// \brief Sets the global log threshold.
void SetLogLevel(LogLevel level);

/// \brief Global output format (default text).
LogFormat GetLogFormat();
void SetLogFormat(LogFormat format);

/// \brief Parses "debug"/"info"/"warning"/"error" (case-sensitive).
/// Returns false on anything else, leaving \p out untouched.
bool ParseLogLevel(std::string_view name, LogLevel* out);
/// \brief Parses "text"/"json".
bool ParseLogFormat(std::string_view name, LogFormat* out);

/// \brief Upper-case short name ("WARN") used in both formats.
const char* LogLevelName(LogLevel level);

/// \brief Redirects finished log lines (newline included) to \p sink for
/// tests; null restores stderr. The sink must be callable from any thread.
using LogSink = void (*)(std::string_view line);
void SetLogSink(LogSink sink);

/// \brief Lines dropped by PRAGUE_SLOG_EVERY rate limiters, process-wide.
/// Exported by the metrics registry as `prague_log_suppressed_total`.
uint64_t SuppressedLogCount();

/// \brief Appends \p in to \p out with JSON string escaping (quotes,
/// backslash, control characters). Exposed for tests and other JSON
/// emitters (trace dumps, /statusz).
void AppendJsonEscaped(std::string& out, std::string_view in);
/// \brief Convenience wrapper returning the escaped string.
std::string JsonEscape(std::string_view in);

/// \brief Token bucket for one log call site. Allow(now_us) is a pure
/// deterministic function of the supplied clock — tests drive it with a
/// fake clock — while AllowNow() reads the monotonic clock and counts
/// refusals into SuppressedLogCount(). Thread-safe.
class LogRateLimiter {
 public:
  /// \p per_sec tokens accrue per second up to \p burst. per_sec <= 0
  /// disables the limiter (everything allowed).
  LogRateLimiter(double per_sec, double burst);

  /// \brief Takes one token at time \p now_us; true when the line may log.
  bool Allow(int64_t now_us);
  /// \brief Allow(monotonic now); counts a refusal as a suppressed line.
  bool AllowNow();

  /// \brief Lines this limiter refused (for tests; the process-wide total
  /// is SuppressedLogCount()).
  uint64_t suppressed() const;

 private:
  const double per_sec_;
  const double burst_;
  mutable std::mutex mu_;
  double tokens_;        // guarded by mu_
  int64_t last_us_ = 0;  // guarded by mu_; 0 = never refilled
  std::atomic<uint64_t> suppressed_{0};
};

namespace internal {

/// \brief Counts one suppressed line (macro plumbing).
void CountSuppressedLog();

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  /// Typed fields. Keys should be bare identifiers ([a-z0-9_]); values are
  /// escaped as needed per format.
  LogMessage& Field(std::string_view key, std::string_view value);
  LogMessage& Field(std::string_view key, const char* value) {
    return Field(key, std::string_view(value == nullptr ? "" : value));
  }
  LogMessage& Field(std::string_view key, const std::string& value) {
    return Field(key, std::string_view(value));
  }
  LogMessage& Field(std::string_view key, bool value);
  LogMessage& Field(std::string_view key, double value);
  LogMessage& Field(std::string_view key, long long value);
  LogMessage& Field(std::string_view key, unsigned long long value);
  LogMessage& Field(std::string_view key, int value) {
    return Field(key, static_cast<long long>(value));
  }
  LogMessage& Field(std::string_view key, unsigned value) {
    return Field(key, static_cast<unsigned long long>(value));
  }
  LogMessage& Field(std::string_view key, long value) {
    return Field(key, static_cast<long long>(value));
  }
  LogMessage& Field(std::string_view key, unsigned long value) {
    return Field(key, static_cast<unsigned long long>(value));
  }

  /// Free-form message body (stream style).
  std::ostream& stream() { return stream_; }
  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  struct FieldRecord {
    std::string key;
    std::string value;  // pre-rendered
    bool json_raw;      // value is already a JSON literal (number/bool)
  };

  LogLevel level_;
  const char* basename_;
  int line_;
  std::ostringstream stream_;
  std::vector<FieldRecord> fields_;
};

}  // namespace internal

#define PRAGUE_LOG_INTERNAL_MESSAGE(level)                        \
  ::prague::internal::LogMessage(::prague::LogLevel::k##level,    \
                                 __FILE__, __LINE__)

/// Stream-style logging (back-compat): PRAGUE_LOG(Info) << "text";
#define PRAGUE_LOG(level)                                              \
  if (::prague::LogLevel::k##level < ::prague::GetLogLevel()) {        \
  } else                                                               \
    PRAGUE_LOG_INTERNAL_MESSAGE(level).stream()

/// Structured logging: PRAGUE_SLOG(Warning).Field("k", v) << "message";
#define PRAGUE_SLOG(level)                                             \
  if (::prague::LogLevel::k##level < ::prague::GetLogLevel()) {        \
  } else                                                               \
    PRAGUE_LOG_INTERNAL_MESSAGE(level)

/// Structured logging with a per-call-site token bucket: at most
/// \p per_sec lines/second (burst \p burst) from this source location;
/// refused lines increment `prague_log_suppressed_total` and cost one
/// atomic op — no formatting, no I/O.
#define PRAGUE_SLOG_EVERY(level, per_sec, burst)                       \
  if (::prague::LogLevel::k##level < ::prague::GetLogLevel()) {        \
  } else if ([]() {                                                    \
               static ::prague::LogRateLimiter prague_rl_((per_sec),   \
                                                          (burst));    \
               return !prague_rl_.AllowNow();                          \
             }()) {                                                    \
  } else                                                               \
    PRAGUE_LOG_INTERNAL_MESSAGE(level)

}  // namespace prague

#endif  // PRAGUE_UTIL_LOGGING_H_
