#include "obs/labels.h"

namespace prague::obs {

namespace {

// Shared interning policy: find-or-insert under the family mutex, falling
// back to the overflow metric once max_series values exist. A literal
// "other" value also lands on the overflow metric so the exposition never
// carries two series with the same label.
template <typename Metric>
Metric* FindOrIntern(
    std::map<std::string, std::unique_ptr<Metric>, std::less<>>& series,
    size_t max_series, bool& overflowed, Metric& other,
    std::string_view value) {
  if (value == kOverflowLabelValue) {
    overflowed = true;
    return &other;
  }
  auto it = series.find(value);
  if (it != series.end()) return it->second.get();
  if (series.size() >= max_series) {
    overflowed = true;
    return &other;
  }
  return series.emplace(std::string(value), std::make_unique<Metric>())
      .first->second.get();
}

}  // namespace

LabeledCounter::LabeledCounter(std::string label_key, size_t max_series)
    : label_key_(std::move(label_key)),
      max_series_(max_series == 0 ? 1 : max_series) {}

Counter* LabeledCounter::WithLabel(std::string_view value) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrIntern(series_, max_series_, overflowed_, other_, value);
}

std::vector<std::pair<std::string, uint64_t>> LabeledCounter::Series() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(series_.size() + 1);
  for (const auto& [value, counter] : series_) {
    out.emplace_back(value, counter->Value());
  }
  if (overflowed_) out.emplace_back(kOverflowLabelValue, other_.Value());
  return out;
}

void LabeledCounter::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [value, counter] : series_) counter->Reset();
  other_.Reset();
}

LabeledGauge::LabeledGauge(std::string label_key, size_t max_series)
    : label_key_(std::move(label_key)),
      max_series_(max_series == 0 ? 1 : max_series) {}

Gauge* LabeledGauge::WithLabel(std::string_view value) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrIntern(series_, max_series_, overflowed_, other_, value);
}

std::vector<std::pair<std::string, int64_t>> LabeledGauge::Series() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(series_.size() + 1);
  for (const auto& [value, gauge] : series_) {
    out.emplace_back(value, gauge->Value());
  }
  if (overflowed_) out.emplace_back(kOverflowLabelValue, other_.Value());
  return out;
}

void LabeledGauge::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [value, gauge] : series_) gauge->Reset();
  other_.Reset();
}

LabeledHistogram::LabeledHistogram(std::string label_key, size_t max_series)
    : label_key_(std::move(label_key)),
      max_series_(max_series == 0 ? 1 : max_series) {}

Histogram* LabeledHistogram::WithLabel(std::string_view value) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrIntern(series_, max_series_, overflowed_, other_, value);
}

std::vector<std::pair<std::string, HistogramSnapshot>>
LabeledHistogram::Series() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  out.reserve(series_.size() + 1);
  for (const auto& [value, histogram] : series_) {
    out.emplace_back(value, histogram->Snapshot());
  }
  if (overflowed_) out.emplace_back(kOverflowLabelValue, other_.Snapshot());
  return out;
}

void LabeledHistogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [value, histogram] : series_) histogram->Reset();
  other_.Reset();
}

std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace prague::obs
