#include "util/thread_pool.h"

#include <algorithm>

namespace prague {

ThreadPool::ThreadPool(size_t threads) {
  size_t n = std::max<size_t>(1, threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t count, size_t min_chunk,
                             const std::function<void(size_t, size_t)>& fn) {
  if (count == 0) return;
  // min_chunk == 0 would make the chunk-count division below UB; a zero
  // minimum can only mean "no lower bound", which 1 expresses safely.
  if (min_chunk == 0) min_chunk = 1;
  size_t workers = size();
  if (workers <= 1 || count <= min_chunk) {
    fn(0, count);
    return;
  }
  size_t chunks = std::min(workers * 4, (count + min_chunk - 1) / min_chunk);
  size_t per_chunk = (count + chunks - 1) / chunks;
  TaskGroup group(this);
  for (size_t begin = 0; begin < count; begin += per_chunk) {
    size_t end = std::min(count, begin + per_chunk);
    group.Submit([&fn, begin, end] { fn(begin, end); });
  }
  group.WaitAll();
}

void TaskGroup::RunTask(const std::function<void()>& task) {
  Status error;
  try {
    task();
  } catch (const std::exception& e) {
    error = Status::Internal(std::string("task threw: ") + e.what());
  } catch (...) {
    error = Status::Internal("task threw a non-std exception");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!error.ok() && first_error_.ok()) first_error_ = std::move(error);
  if (--pending_ == 0) done_.notify_all();
}

void TaskGroup::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  if (pool_ == nullptr) {
    RunTask(task);
    return;
  }
  pool_->Submit([this, task = std::move(task)] { RunTask(task); });
}

Status TaskGroup::WaitAll() {
  std::unique_lock<std::mutex> lock(mu_);
  done_.wait(lock, [this] { return pending_ == 0; });
  return first_error_;
}

}  // namespace prague
