// The stall watchdog (obs/watchdog.h), driven deterministically with an
// injected clock and explicit Tick() calls: long-run incidents fire
// exactly once per run (one metric increment + one structured log line +
// one synthetic trace), event-loop heartbeats report lag and stall/
// recover, and every tick pings the registered wake so parked loops get
// a chance to beat.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <string>
#include <vector>

#include "obs/labels.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "util/logging.h"

namespace prague {
namespace {

std::mutex g_lines_mu;
std::vector<std::string> g_lines;

void CaptureSink(std::string_view line) {
  std::lock_guard<std::mutex> lock(g_lines_mu);
  g_lines.emplace_back(line);
}

std::vector<std::string> TakeLines() {
  std::lock_guard<std::mutex> lock(g_lines_mu);
  std::vector<std::string> out;
  out.swap(g_lines);
  return out;
}

size_t CountContaining(const std::vector<std::string>& lines,
                       std::string_view needle) {
  size_t n = 0;
  for (const std::string& line : lines) {
    if (line.find(needle) != std::string::npos) ++n;
  }
  return n;
}

class WatchdogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_level_ = GetLogLevel();
    SetLogLevel(LogLevel::kInfo);
    SetLogSink(&CaptureSink);
    TakeLines();
    now_us_.store(1'000'000);
  }
  void TearDown() override {
    SetLogSink(nullptr);
    SetLogLevel(saved_level_);
  }

  // The watchdog metrics are process-global; every assertion is a delta.
  obs::WatchdogOptions FakeClock(obs::WatchdogOptions options = {}) {
    options.now_us = [this] { return now_us_.load(); };
    return options;
  }

  void AdvanceMs(int64_t ms) { now_us_.fetch_add(ms * 1000); }

  std::atomic<int64_t> now_us_{1'000'000};

 private:
  LogLevel saved_level_;
};

TEST_F(WatchdogTest, LongRunFlagsExactlyOnceWithOneLogLine) {
  obs::WatchdogOptions options;
  options.stall_budget_multiple = 4.0;
  options.min_run_stall_us = 10'000;
  obs::Watchdog dog(FakeClock(options));
  obs::TraceRing ring(8);
  dog.set_trace_ring(&ring);

  const uint64_t stalls_before = dog.stalls();
  const uint64_t token = dog.OnRunStarted("acme", 100);  // budget 100 ms
  EXPECT_EQ(dog.active_runs(), 1u);

  AdvanceMs(100);
  dog.Tick();  // within budget
  AdvanceMs(250);
  dog.Tick();  // 350 ms: within 4x budget
  EXPECT_EQ(dog.stalls() - stalls_before, 0u);

  AdvanceMs(100);
  dog.Tick();  // 450 ms > 400 ms limit: incident
  EXPECT_EQ(dog.stalls() - stalls_before, 1u);

  // The incident fired; further ticks must not re-flag the same run.
  AdvanceMs(5'000);
  dog.Tick();
  dog.Tick();
  EXPECT_EQ(dog.stalls() - stalls_before, 1u);

  std::vector<std::string> lines = TakeLines();
  EXPECT_EQ(CountContaining(lines, "run exceeded its deadline budget"), 1u);
  EXPECT_EQ(CountContaining(lines, "acme"), 1u);

  // One synthetic trace, marked with the watchdog phase.
  std::vector<obs::RunTrace> traces = ring.Recent();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_STREQ(traces[0].deadline_phase, "watchdog-stall");
  EXPECT_TRUE(traces[0].truncated);

  dog.OnRunFinished(token);
  EXPECT_EQ(dog.active_runs(), 0u);
}

TEST_F(WatchdogTest, UnboundedRunsAreNeverFlagged) {
  obs::Watchdog dog(FakeClock());
  const uint64_t stalls_before = dog.stalls();
  const uint64_t token = dog.OnRunStarted("batch", 0);  // no budget
  AdvanceMs(3'600'000);  // an hour
  dog.Tick();
  EXPECT_EQ(dog.stalls() - stalls_before, 0u);
  EXPECT_TRUE(TakeLines().empty());
  dog.OnRunFinished(token);
}

TEST_F(WatchdogTest, TinyBudgetsUseTheStallFloor) {
  obs::WatchdogOptions options;
  options.stall_budget_multiple = 4.0;
  options.min_run_stall_us = 10'000;
  obs::Watchdog dog(FakeClock(options));
  const uint64_t stalls_before = dog.stalls();
  const uint64_t token = dog.OnRunStarted("t", 1);  // 4x budget = 4 ms
  AdvanceMs(8);
  dog.Tick();  // past 4x budget but under the 10 ms floor: jitter, not stall
  EXPECT_EQ(dog.stalls() - stalls_before, 0u);
  AdvanceMs(4);
  dog.Tick();  // 12 ms: past the floor
  EXPECT_EQ(dog.stalls() - stalls_before, 1u);
  dog.OnRunFinished(token);
}

TEST_F(WatchdogTest, FinishedRunsStopBeingWatched) {
  obs::Watchdog dog(FakeClock());
  const uint64_t stalls_before = dog.stalls();
  const uint64_t token = dog.OnRunStarted("t", 10);
  dog.OnRunFinished(token);
  AdvanceMs(60'000);
  dog.Tick();
  EXPECT_EQ(dog.stalls() - stalls_before, 0u);
}

TEST_F(WatchdogTest, HeartbeatLagIsPublishedAndWakeIsPinged) {
  obs::Watchdog dog(FakeClock());
  std::atomic<int> wakes{0};
  obs::WatchdogHeartbeat* hb =
      dog.RegisterHeartbeat("loop-test", [&wakes] { ++wakes; });

  AdvanceMs(50);
  dog.Tick();
  EXPECT_EQ(hb->last_lag_us(), 50'000);
  EXPECT_EQ(wakes.load(), 1);
  // The labeled gauge carries the same reading.
  obs::LabeledGauge* lag = obs::MetricsRegistry::Global().GetLabeledGauge(
      "prague_server_event_loop_lag_us", "loop");
  EXPECT_EQ(lag->WithLabel("loop-test")->Value(), 50'000);

  hb->Beat();
  dog.Tick();
  EXPECT_EQ(hb->last_lag_us(), 0);
  EXPECT_EQ(wakes.load(), 2);
  dog.UnregisterHeartbeat(hb);
  dog.Tick();
  EXPECT_EQ(wakes.load(), 2);  // never pinged after unregister
}

TEST_F(WatchdogTest, StalledHeartbeatFiresOncePerIncidentAndRecovers) {
  obs::WatchdogOptions options;
  options.heartbeat_stall_us = 2'000'000;
  obs::Watchdog dog(FakeClock(options));
  const uint64_t stalls_before = dog.stalls();
  obs::WatchdogHeartbeat* hb = dog.RegisterHeartbeat("loop-0", nullptr);

  AdvanceMs(2'500);
  dog.Tick();  // 2.5 s without a beat: stalled
  EXPECT_EQ(dog.stalls() - stalls_before, 1u);
  AdvanceMs(1'000);
  dog.Tick();  // still stalled: same incident, no second count
  EXPECT_EQ(dog.stalls() - stalls_before, 1u);

  hb->Beat();
  dog.Tick();  // recovered
  EXPECT_EQ(dog.stalls() - stalls_before, 1u);

  AdvanceMs(3'000);
  dog.Tick();  // a new incident
  EXPECT_EQ(dog.stalls() - stalls_before, 2u);

  std::vector<std::string> lines = TakeLines();
  EXPECT_EQ(CountContaining(lines, "thread stopped beating"), 2u);
  dog.UnregisterHeartbeat(hb);
}

TEST_F(WatchdogTest, StartStopThreadIsIdempotent) {
  // Real-clock smoke test of the background thread itself.
  obs::Watchdog dog{};
  dog.Start();
  dog.Start();
  dog.Stop();
  dog.Stop();
  dog.Start();
  dog.Stop();
}

}  // namespace
}  // namespace prague
