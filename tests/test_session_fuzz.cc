// Randomized end-to-end session fuzzing: apply a random stream of visual
// actions (add edge / delete edge / relabel node) to a PragueSession and
// assert after every action that
//   (1) the SPIG set covers each connected edge subset of the current
//       fragment exactly once (the structural invariant all of PRAGUE's
//       algorithms rely on),
//   (2) the exact candidate set is sound (superset of the true answers),
//   (3) the session state equals a fresh session formulating the same
//       final fragment from scratch.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/prague_session.h"
#include "core/session_manager.h"
#include "datasets/query_workload.h"
#include "graph/vf2.h"
#include "test_fixtures.h"
#include "util/rng.h"

namespace prague {
namespace {

IdSet TrueMatches(const GraphDatabase& db, const Graph& q) {
  std::vector<GraphId> ids;
  for (GraphId gid = 0; gid < db.size(); ++gid) {
    if (IsSubgraphIsomorphic(q, db.graph(gid))) ids.push_back(gid);
  }
  return IdSet(std::move(ids));
}

void CheckSpigCoverage(const PragueSession& session) {
  if (session.query().Empty()) return;
  const Graph& q = session.query().CurrentGraph();
  auto by_size = ConnectedEdgeSubsetsBySize(q);
  for (size_t k = 1; k <= q.EdgeCount(); ++k) {
    ASSERT_EQ(session.spigs().VertexCountAtLevel(static_cast<int>(k)),
              by_size[k].size())
        << "level " << k;
    for (EdgeMask gmask : by_size[k]) {
      FormulationMask fmask = session.query().ToFormulationMask(gmask);
      const SpigVertex* v = session.spigs().FindVertex(fmask);
      ASSERT_NE(v, nullptr);
      // The vertex's canonical code must match the live subgraph (catches
      // stale fragments after relabels).
      Graph sub = ExtractEdgeSubgraph(q, gmask).graph;
      ASSERT_EQ(v->code, GetCanonicalCode(sub));
    }
  }
}

class SessionFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SessionFuzzTest, RandomActionStreamsKeepInvariants) {
  const auto& fixture = testing::TinyFixture::Get();
  Rng rng(GetParam() * 7919 + 13);
  PragueSession session(fixture.snapshot);
  std::vector<Label> labels = {testing::kC, testing::kS, testing::kO,
                               testing::kN};

  int performed = 0;
  for (int step = 0; step < 40 && performed < 25; ++step) {
    size_t action = rng.Below(10);
    if (session.query().Empty() || action < 5) {
      // Add an edge: either between two existing nodes or to a new node.
      NodeId u, v;
      if (!session.query().Empty() && rng.Chance(0.3) &&
          session.query().UserNodeCount() >= 2) {
        u = static_cast<NodeId>(rng.Below(session.query().UserNodeCount()));
        v = static_cast<NodeId>(rng.Below(session.query().UserNodeCount()));
      } else if (session.query().Empty()) {
        u = session.AddNode(labels[rng.Below(labels.size())]);
        v = session.AddNode(labels[rng.Below(labels.size())]);
      } else {
        u = static_cast<NodeId>(rng.Below(session.query().UserNodeCount()));
        v = session.AddNode(labels[rng.Below(labels.size())]);
      }
      if (session.query().EdgeCount() >= 7) continue;  // keep it small
      Result<StepReport> r = session.AddEdge(u, v);
      if (!r.ok()) continue;  // duplicate/disconnected attempts are fine
      ++performed;
    } else if (action < 7) {
      // Delete a random deletable edge.
      std::vector<FormulationId> alive = session.query().AliveEdgeIds();
      if (alive.empty()) continue;
      FormulationId ell = alive[rng.Below(alive.size())];
      if (!session.query().CanDelete(ell)) continue;
      ASSERT_TRUE(session.DeleteEdge(ell).ok());
      ++performed;
    } else if (action < 9) {
      // Relabel a random node.
      if (session.query().UserNodeCount() == 0) continue;
      NodeId n =
          static_cast<NodeId>(rng.Below(session.query().UserNodeCount()));
      Result<StepReport> r =
          session.RelabelNode(n, labels[rng.Below(labels.size())]);
      ASSERT_TRUE(r.ok());
      ++performed;
    } else {
      // Occasionally force similarity mode.
      if (!session.query().Empty()) {
        ASSERT_TRUE(session.EnableSimilarity().ok());
      }
      continue;
    }

    // Invariant (1): SPIG coverage.
    CheckSpigCoverage(session);
    // Invariant (2): candidate soundness.
    if (!session.query().Empty()) {
      IdSet truth =
          TrueMatches(fixture.db, session.query().CurrentGraph());
      EXPECT_TRUE(truth.IsSubsetOf(session.exact_candidates()))
          << "step " << step;
    }
  }

  // Invariant (3): equivalence with a from-scratch session.
  if (!session.query().Empty()) {
    const Graph& final_q = session.query().CurrentGraph();
    PragueSession fresh(fixture.snapshot);
    std::vector<NodeId> node_map(final_q.NodeCount(), kInvalidNode);
    for (EdgeId e : DefaultFormulationSequence(final_q)) {
      const Edge& edge = final_q.GetEdge(e);
      for (NodeId n : {edge.u, edge.v}) {
        if (node_map[n] == kInvalidNode) {
          node_map[n] = fresh.AddNode(final_q.NodeLabel(n));
        }
      }
      ASSERT_TRUE(
          fresh.AddEdge(node_map[edge.u], node_map[edge.v], edge.label).ok());
    }
    EXPECT_EQ(session.exact_candidates(), fresh.exact_candidates());
    // simFlag is path-dependent (once a user opts into similarity it
    // sticks until a modification restores matches), so Run outputs are
    // only comparable when both sessions ended in the same mode.
    if (session.similarity_mode() == fresh.similarity_mode()) {
      Result<QueryResults> a = session.Run(nullptr);
      Result<QueryResults> b = fresh.Run(nullptr);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(a->exact, b->exact);
      EXPECT_EQ(a->similarity, b->similarity);
      if (a->similarity) {
        ASSERT_EQ(a->similar.size(), b->similar.size());
        for (size_t i = 0; i < a->similar.size(); ++i) {
          EXPECT_EQ(a->similar[i], b->similar[i]);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SessionFuzzTest,
                         ::testing::Range<uint64_t>(0, 25));

// Modification actions (DeleteEdges, RelabelNode) inside snapshot-pinned
// sessions while a background thread keeps publishing appended versions
// through the manager. Every session must keep answering from its pinned
// version: candidate soundness is checked against the *pinned* database,
// and |D| must never move under a live session's feet.
TEST(ConcurrentAppendFuzzTest, ModificationsInPinnedSessionsDuringAppends) {
  const auto& fixture = testing::TinyFixture::Get();
  // Owned copies (cheap, structurally shared) so published successors can
  // never touch the shared fixture.
  SessionManager manager(DatabaseSnapshot::Make(fixture.db, fixture.indexes));

  std::atomic<bool> stop{false};
  std::thread appender([&] {
    for (int i = 0; i < 64 && !stop.load(std::memory_order_relaxed); ++i) {
      std::vector<Graph> extra;
      extra.push_back(testing::MakeGraph(
          {testing::kC, testing::kC, testing::kS}, {{0, 1}, {1, 2}}));
      Result<MaintenanceReport> r = manager.Append(std::move(extra), 0.34);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      if (r.ok()) {
        EXPECT_EQ(r->to_version, r->from_version + 1);
      }
    }
  });

  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&] {
      for (int round = 0; round < 6; ++round) {
        std::shared_ptr<ManagedSession> managed = manager.Open();
        managed->With([&](PragueSession& s) {
          const size_t pinned_size = s.snapshot()->db().size();
          // Draw a 4-edge path C-S-C-C-O, then modify it.
          NodeId a = s.AddNode(testing::kC);
          NodeId b = s.AddNode(testing::kS);
          NodeId c = s.AddNode(testing::kC);
          NodeId d = s.AddNode(testing::kC);
          NodeId e = s.AddNode(testing::kO);
          EXPECT_TRUE(s.AddEdge(a, b).ok());
          EXPECT_TRUE(s.AddEdge(b, c).ok());
          Result<StepReport> third = s.AddEdge(c, d);
          Result<StepReport> fourth = s.AddEdge(d, e);
          EXPECT_TRUE(third.ok());
          EXPECT_TRUE(fourth.ok());
          // Multi-edge deletion while versions publish underneath.
          EXPECT_TRUE(s.DeleteEdges({third->edge, fourth->edge}).ok());
          // Relabel, too.
          EXPECT_TRUE(s.RelabelNode(b, testing::kO).ok());
          // Soundness against the *pinned* database.
          IdSet truth =
              TrueMatches(s.snapshot()->db(), s.query().CurrentGraph());
          EXPECT_TRUE(truth.IsSubsetOf(s.exact_candidates()));
          // The pinned view is immutable: |D| cannot have changed.
          EXPECT_EQ(s.snapshot()->db().size(), pinned_size);
          EXPECT_TRUE(s.Run(nullptr).ok());
        });
      }
    });
  }
  for (std::thread& t : workers) t.join();
  stop.store(true, std::memory_order_relaxed);
  appender.join();

  // All worker sessions are closed; the current snapshot reflects every
  // published append (one graph per publish).
  SessionManagerStats stats = manager.Stats();
  EXPECT_EQ(stats.open_sessions, 0u);
  EXPECT_GE(stats.snapshots_published, 1u);
  EXPECT_EQ(manager.current()->db().size(),
            fixture.db.size() + stats.snapshots_published);
}

}  // namespace
}  // namespace prague
