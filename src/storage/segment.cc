#include "storage/segment.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "graph/dfs_code.h"
#include "index/a2f_index.h"
#include "index/a2i_index.h"
#include "index/action_aware_index.h"
#include "storage/coding.h"
#include "storage/crc32c.h"
#include "storage/fs_util.h"
#include "util/bytes.h"

namespace prague::storage {

// The posting region is reinterpreted in place as GraphId (u32) values, so
// the on-disk little-endian format is only directly mappable on
// little-endian hosts. Fail the build loudly elsewhere rather than
// corrupting silently.
static_assert(std::endian::native == std::endian::little,
              "segment mmap fast path requires a little-endian host");
static_assert(sizeof(GraphId) == 4, "posting region assumes 32-bit ids");

namespace {

Status Errno(const std::string& op, const std::string& path) {
  return Status::IOError(op + " " + path + ": " + std::strerror(errno));
}

uint64_t DecodeU64LE(const uint8_t* p) {
  return static_cast<uint64_t>(DecodeU32LE(p)) |
         (static_cast<uint64_t>(DecodeU32LE(p + 4)) << 32);
}

// An element range within the posting region.
struct PostingRef {
  uint64_t start = 0;
  uint64_t count = 0;
};

}  // namespace

Result<std::shared_ptr<MappedSegment>> MappedSegment::Map(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("segment " + path);
    return Errno("open", path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status s = Errno("fstat", path);
    ::close(fd);
    return s;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size < kSegmentHeaderBytes) {
    ::close(fd);
    return Status::Corruption("segment " + path + " shorter than header (" +
                              std::to_string(size) + " bytes)");
  }
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // The mapping keeps the file alive on its own.
  if (base == MAP_FAILED) return Errno("mmap", path);
  return std::shared_ptr<MappedSegment>(new MappedSegment(base, size));
}

MappedSegment::~MappedSegment() { ::munmap(base_, size_); }

// Private-member access point (befriended by A2FIndex / A2IIndex).
class SegmentIO {
 public:
  static Status Encode(const DatabaseSnapshot& snapshot, std::string* blob);
  static Result<OpenedSegment> Decode(std::shared_ptr<MappedSegment> mapping,
                                      const std::string& path,
                                      const SegmentReadOptions& options);
};

Status SegmentIO::Encode(const DatabaseSnapshot& snapshot, std::string* blob) {
  const GraphDatabase& db = snapshot.db();
  const ActionAwareIndexes& indexes = snapshot.indexes();
  const A2FIndex& a2f = indexes.a2f;
  const A2IIndex& a2i = indexes.a2i;

  // Postings are gathered in metadata-encounter order; every reference is
  // an element (not byte) range.
  std::vector<GraphId> postings;
  auto add_postings = [&postings](const IdSet& set) {
    PostingRef ref{postings.size(), set.size()};
    std::span<const GraphId> ids = set.span();
    postings.insert(postings.end(), ids.begin(), ids.end());
    return ref;
  };

  ByteWriter meta;
  meta.PutU64(snapshot.version());
  meta.PutU64(indexes.min_support);
  meta.PutU64(a2f.beta());

  const LabelDictionary& labels = db.labels();
  meta.PutU32(static_cast<uint32_t>(labels.size()));
  for (const std::string& name : labels.names()) meta.PutString(name);

  meta.PutU32(static_cast<uint32_t>(db.size()));
  for (GraphId gid = 0; gid < db.size(); ++gid) {
    const Graph& g = db.graph(gid);
    meta.PutU32(static_cast<uint32_t>(g.NodeCount()));
    for (Label l : g.node_labels()) meta.PutU32(l);
    meta.PutU32(static_cast<uint32_t>(g.EdgeCount()));
    for (const Edge& e : g.edges()) {
      meta.PutU32(e.u);
      meta.PutU32(e.v);
      meta.PutU32(e.label);
    }
  }

  meta.PutU32(static_cast<uint32_t>(a2f.VertexCount()));
  for (const A2fVertex& v : a2f.vertices_) {
    meta.PutString(v.code);
    meta.PutU8(v.in_mf ? 1 : 0);
    PostingRef fsg = add_postings(v.fsg_ids);
    meta.PutU64(fsg.start);
    meta.PutU64(fsg.count);
    PostingRef del = add_postings(v.del_ids);
    meta.PutU64(del.start);
    meta.PutU64(del.count);
    meta.PutU32(static_cast<uint32_t>(v.parents.size()));
    for (A2fId p : v.parents) meta.PutU32(p);
    meta.PutU32(static_cast<uint32_t>(v.children.size()));
    for (A2fId c : v.children) meta.PutU32(c);
  }

  meta.PutU32(static_cast<uint32_t>(a2f.clusters_.size()));
  for (const FragmentCluster& c : a2f.clusters_) {
    meta.PutU32(c.root);
    meta.PutU32(static_cast<uint32_t>(c.members.size()));
    for (A2fId m : c.members) meta.PutU32(m);
  }

  meta.PutU32(static_cast<uint32_t>(a2i.EntryCount()));
  for (const A2iEntry& e : a2i.entries_) {
    meta.PutString(e.code);
    PostingRef fsg = add_postings(e.fsg_ids);
    meta.PutU64(fsg.start);
    meta.PutU64(fsg.count);
  }

  const std::string& meta_bytes = meta.buffer();
  uint64_t postings_offset = kSegmentHeaderBytes + meta_bytes.size();
  postings_offset = (postings_offset + 3) & ~uint64_t{3};

  ByteWriter postings_writer;
  for (GraphId id : postings) postings_writer.PutU32(id);
  const std::string& posting_bytes = postings_writer.buffer();

  std::string& out = *blob;
  out.clear();
  out.reserve(postings_offset + posting_bytes.size());
  out.append(kSegmentMagic, sizeof(kSegmentMagic));
  ByteWriter header;
  header.PutU64(meta_bytes.size());
  header.PutU64(postings_offset);
  header.PutU64(postings.size());
  header.PutU32(Crc32c(meta_bytes.data(), meta_bytes.size()));
  header.PutU32(Crc32c(posting_bytes.data(), posting_bytes.size()));
  out.append(header.buffer());
  out.append(meta_bytes);
  out.resize(postings_offset, '\0');  // alignment padding
  out.append(posting_bytes);
  return Status::OK();
}

Result<OpenedSegment> SegmentIO::Decode(std::shared_ptr<MappedSegment> mapping,
                                        const std::string& path,
                                        const SegmentReadOptions& options) {
  const uint8_t* base = mapping->data();
  const size_t size = mapping->size();
  auto corrupt = [&path](const std::string& why) {
    return Status::Corruption("segment " + path + ": " + why);
  };

  if (std::memcmp(base, kSegmentMagic, sizeof(kSegmentMagic)) != 0) {
    return corrupt("bad magic");
  }
  const uint64_t meta_size = DecodeU64LE(base + 8);
  const uint64_t postings_offset = DecodeU64LE(base + 16);
  const uint64_t postings_count = DecodeU64LE(base + 24);
  const uint32_t meta_crc = DecodeU32LE(base + 32);
  const uint32_t postings_crc = DecodeU32LE(base + 36);

  if (meta_size > size - kSegmentHeaderBytes) {
    return corrupt("metadata block exceeds file");
  }
  if (postings_offset % 4 != 0 ||
      postings_offset < kSegmentHeaderBytes + meta_size ||
      postings_offset > size) {
    return corrupt("bad posting region offset");
  }
  if (postings_count > (size - postings_offset) / sizeof(GraphId)) {
    return corrupt("posting region exceeds file");
  }

  const uint8_t* meta_bytes = base + kSegmentHeaderBytes;
  if (Crc32c(meta_bytes, meta_size) != meta_crc) {
    return corrupt("metadata checksum mismatch");
  }
  const uint8_t* posting_base = base + postings_offset;
  if (options.verify_postings_crc &&
      Crc32c(posting_base, postings_count * sizeof(GraphId)) != postings_crc) {
    return corrupt("posting region checksum mismatch");
  }
  const GraphId* posting_ids = reinterpret_cast<const GraphId*>(posting_base);

  ByteReader in(std::string_view(reinterpret_cast<const char*>(meta_bytes),
                                 meta_size));
  PRAGUE_ASSIGN_OR_RETURN(uint64_t version, in.U64());
  PRAGUE_ASSIGN_OR_RETURN(uint64_t min_support, in.U64());
  PRAGUE_ASSIGN_OR_RETURN(uint64_t beta, in.U64());

  GraphDatabase db;
  PRAGUE_ASSIGN_OR_RETURN(uint32_t label_count, in.U32());
  for (uint32_t i = 0; i < label_count; ++i) {
    PRAGUE_ASSIGN_OR_RETURN(std::string_view name, in.String());
    // Interning in stored order reproduces the stored dense ids exactly.
    Label id = db.mutable_labels()->Intern(std::string(name));
    if (id != i) return corrupt("duplicate label name in dictionary");
  }

  PRAGUE_ASSIGN_OR_RETURN(uint32_t graph_count, in.U32());
  for (uint32_t gi = 0; gi < graph_count; ++gi) {
    GraphBuilder b;
    PRAGUE_ASSIGN_OR_RETURN(uint32_t node_count, in.U32());
    for (uint32_t n = 0; n < node_count; ++n) {
      PRAGUE_ASSIGN_OR_RETURN(Label label, in.U32());
      if (label >= label_count) return corrupt("node label out of range");
      b.AddNode(label);
    }
    PRAGUE_ASSIGN_OR_RETURN(uint32_t edge_count, in.U32());
    for (uint32_t e = 0; e < edge_count; ++e) {
      PRAGUE_ASSIGN_OR_RETURN(uint32_t u, in.U32());
      PRAGUE_ASSIGN_OR_RETURN(uint32_t v, in.U32());
      PRAGUE_ASSIGN_OR_RETURN(Label label, in.U32());
      if (u >= node_count || v >= node_count) {
        return corrupt("edge endpoint out of range");
      }
      Result<EdgeId> added = b.AddEdge(u, v, label);
      if (!added.ok()) return corrupt(added.status().message());
    }
    db.Add(std::move(b).Build());
  }

  auto borrow = [&](uint64_t start, uint64_t count) -> Result<IdSet> {
    if (start > postings_count || count > postings_count - start) {
      return corrupt("posting reference out of range");
    }
    return IdSet::Borrow(posting_ids + start, count, mapping);
  };
  auto read_ref_set = [&](IdSet* out) -> Status {
    PRAGUE_ASSIGN_OR_RETURN(uint64_t start, in.U64());
    PRAGUE_ASSIGN_OR_RETURN(uint64_t count, in.U64());
    PRAGUE_ASSIGN_OR_RETURN(*out, borrow(start, count));
    return Status::OK();
  };

  ActionAwareIndexes indexes;
  indexes.min_support = min_support;
  A2FIndex& a2f = indexes.a2f;
  a2f.beta_ = beta;
  PRAGUE_ASSIGN_OR_RETURN(uint32_t vertex_count, in.U32());
  a2f.vertices_.resize(vertex_count);
  a2f.mf_count_ = 0;
  for (A2fId id = 0; id < vertex_count; ++id) {
    A2fVertex& v = a2f.vertices_[id];
    PRAGUE_ASSIGN_OR_RETURN(std::string_view code, in.String());
    v.code.assign(code);
    Result<DfsCode> dfs = DfsCodeFromString(v.code);
    if (!dfs.ok()) return corrupt("bad A2F code: " + dfs.status().message());
    v.fragment = GraphFromDfsCode(*dfs);
    PRAGUE_ASSIGN_OR_RETURN(uint8_t in_mf, in.U8());
    v.in_mf = in_mf != 0;
    if (v.in_mf) ++a2f.mf_count_;
    // Both the full set and the delId set point straight into the mapping;
    // nothing is reconstructed (that would defeat the zero-copy open).
    PRAGUE_RETURN_NOT_OK(read_ref_set(&v.fsg_ids));
    PRAGUE_RETURN_NOT_OK(read_ref_set(&v.del_ids));
    PRAGUE_ASSIGN_OR_RETURN(uint32_t parent_count, in.U32());
    v.parents.resize(parent_count);
    for (uint32_t p = 0; p < parent_count; ++p) {
      PRAGUE_ASSIGN_OR_RETURN(v.parents[p], in.U32());
      if (v.parents[p] >= vertex_count) return corrupt("parent out of range");
    }
    PRAGUE_ASSIGN_OR_RETURN(uint32_t child_count, in.U32());
    v.children.resize(child_count);
    for (uint32_t c = 0; c < child_count; ++c) {
      PRAGUE_ASSIGN_OR_RETURN(v.children[c], in.U32());
      if (v.children[c] >= vertex_count) return corrupt("child out of range");
    }
    a2f.by_code_.emplace(v.code, id);
  }

  PRAGUE_ASSIGN_OR_RETURN(uint32_t cluster_count, in.U32());
  a2f.clusters_.resize(cluster_count);
  for (FragmentCluster& c : a2f.clusters_) {
    PRAGUE_ASSIGN_OR_RETURN(c.root, in.U32());
    if (c.root >= vertex_count) return corrupt("cluster root out of range");
    PRAGUE_ASSIGN_OR_RETURN(uint32_t member_count, in.U32());
    c.members.resize(member_count);
    for (uint32_t m = 0; m < member_count; ++m) {
      PRAGUE_ASSIGN_OR_RETURN(c.members[m], in.U32());
      if (c.members[m] >= vertex_count) {
        return corrupt("cluster member out of range");
      }
    }
  }
  // MF leaf → cluster lists are derived, not stored (same as index_io).
  for (uint32_t cid = 0; cid < a2f.clusters_.size(); ++cid) {
    A2fId root = a2f.clusters_[cid].root;
    for (A2fId parent : a2f.vertices_[root].parents) {
      if (a2f.vertices_[parent].size() == beta) {
        a2f.leaf_clusters_[parent].push_back(cid);
      }
    }
  }

  A2IIndex& a2i = indexes.a2i;
  PRAGUE_ASSIGN_OR_RETURN(uint32_t entry_count, in.U32());
  a2i.entries_.resize(entry_count);
  for (A2iId id = 0; id < entry_count; ++id) {
    A2iEntry& e = a2i.entries_[id];
    PRAGUE_ASSIGN_OR_RETURN(std::string_view code, in.String());
    e.code.assign(code);
    Result<DfsCode> dfs = DfsCodeFromString(e.code);
    if (!dfs.ok()) return corrupt("bad A2I code: " + dfs.status().message());
    e.fragment = GraphFromDfsCode(*dfs);
    PRAGUE_RETURN_NOT_OK(read_ref_set(&e.fsg_ids));
    a2i.by_code_.emplace(e.code, id);
  }
  if (!in.exhausted()) return corrupt("trailing bytes in metadata block");

  OpenedSegment out;
  out.file_bytes = size;
  out.posting_bytes = postings_count * sizeof(GraphId);
  out.snapshot =
      DatabaseSnapshot::Make(std::move(db), std::move(indexes), version);
  out.mapping = std::move(mapping);
  return out;
}

Status WriteSegment(const DatabaseSnapshot& snapshot, const std::string& dir,
                    const std::string& file_name) {
  std::string blob;
  PRAGUE_RETURN_NOT_OK(SegmentIO::Encode(snapshot, &blob));
  return WriteFileDurable(dir, file_name, blob);
}

Result<OpenedSegment> OpenSegment(const std::string& path,
                                  const SegmentReadOptions& options) {
  PRAGUE_ASSIGN_OR_RETURN(std::shared_ptr<MappedSegment> mapping,
                          MappedSegment::Map(path));
  return SegmentIO::Decode(std::move(mapping), path, options);
}

}  // namespace prague::storage
