#include "obs/trace.h"

#include <cstdio>
#include <utility>

#include "util/logging.h"

namespace prague::obs {

std::string RunTrace::ToString() const {
  char head[256];
  std::snprintf(head, sizeof(head),
                "run#%llu session=%llu version=%llu |q|=%zu mode=%s "
                "results=%zu srt_ms=%.3f truncated=%d phase=%s vf2=%llu "
                "nodes=%llu pruned=%llu spans=[",
                static_cast<unsigned long long>(run_ordinal),
                static_cast<unsigned long long>(session_tag),
                static_cast<unsigned long long>(snapshot_version),
                query_edges, similarity ? "similar" : "exact", result_count,
                srt_seconds * 1000, truncated ? 1 : 0, deadline_phase,
                static_cast<unsigned long long>(vf2_calls),
                static_cast<unsigned long long>(nodes_expanded),
                static_cast<unsigned long long>(candidates_pruned));
  std::string out = head;
  for (size_t i = 0; i < spans.size(); ++i) {
    char span[96];
    if (spans[i].shard >= 0) {
      std::snprintf(span, sizeof(span), "%s%s#%d=%.3fms", i ? "," : "",
                    spans[i].name, spans[i].shard, spans[i].seconds * 1000);
    } else {
      std::snprintf(span, sizeof(span), "%s%s=%.3fms", i ? "," : "",
                    spans[i].name, spans[i].seconds * 1000);
    }
    out += span;
  }
  out += ']';
  return out;
}

std::string RunTrace::ToJson() const {
  char head[320];
  std::snprintf(
      head, sizeof(head),
      "{\"run\":%llu,\"session\":%llu,\"version\":%llu,\"query_edges\":%zu,"
      "\"mode\":\"%s\",\"results\":%zu,\"srt_ms\":%.3f,\"truncated\":%s,"
      "\"vf2\":%llu,\"nodes\":%llu,\"pruned\":%llu",
      static_cast<unsigned long long>(run_ordinal),
      static_cast<unsigned long long>(session_tag),
      static_cast<unsigned long long>(snapshot_version), query_edges,
      similarity ? "similar" : "exact", result_count, srt_seconds * 1000,
      truncated ? "true" : "false", static_cast<unsigned long long>(vf2_calls),
      static_cast<unsigned long long>(nodes_expanded),
      static_cast<unsigned long long>(candidates_pruned));
  std::string out = head;
  out += ",\"phase\":\"";
  AppendJsonEscaped(out, deadline_phase);
  out += "\",\"spans\":[";
  for (size_t i = 0; i < spans.size(); ++i) {
    if (i) out += ',';
    out += "{\"name\":\"";
    AppendJsonEscaped(out, spans[i].name);
    char tail[64];
    if (spans[i].shard >= 0) {
      std::snprintf(tail, sizeof(tail), "\",\"ms\":%.3f,\"shard\":%d}",
                    spans[i].seconds * 1000, spans[i].shard);
    } else {
      std::snprintf(tail, sizeof(tail), "\",\"ms\":%.3f}",
                    spans[i].seconds * 1000);
    }
    out += tail;
  }
  out += "]}";
  return out;
}

void TraceRing::Add(RunTrace trace) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(trace));
  } else {
    ring_[next_] = std::move(trace);
    next_ = (next_ + 1) % capacity_;
  }
  ++added_;
}

std::vector<RunTrace> TraceRing::Recent() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RunTrace> out;
  out.reserve(ring_.size());
  // Oldest first: once the ring is full, next_ points at the oldest slot.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

uint64_t TraceRing::total_added() const {
  std::lock_guard<std::mutex> lock(mu_);
  return added_;
}

}  // namespace prague::obs
