// Canonical codes: minimum DFS code properties, CAM cross-validation,
// serialization round-trips.

#include <gtest/gtest.h>

#include "graph/brute_force_iso.h"
#include "graph/cam_code.h"
#include "graph/vf2.h"
#include "graph/canonical.h"
#include "graph/dfs_code.h"
#include "test_fixtures.h"
#include "util/rng.h"

namespace prague {
namespace {

using testing::MakeGraph;
using testing::kC;
using testing::kN;
using testing::kO;
using testing::kS;

// Random node permutation of a graph (isomorphic by construction).
Graph Permute(const Graph& g, Rng* rng) {
  std::vector<NodeId> perm(g.NodeCount());
  for (NodeId i = 0; i < g.NodeCount(); ++i) perm[i] = i;
  rng->Shuffle(&perm);
  GraphBuilder b;
  std::vector<NodeId> new_id(g.NodeCount());
  for (NodeId i = 0; i < g.NodeCount(); ++i) new_id[perm[i]] = i;
  std::vector<Label> labels(g.NodeCount());
  for (NodeId i = 0; i < g.NodeCount(); ++i) {
    labels[new_id[i]] = g.NodeLabel(i);
  }
  for (Label l : labels) b.AddNode(l);
  std::vector<Edge> edges = g.edges();
  rng->Shuffle(&edges);
  for (const Edge& e : edges) {
    (void)b.AddEdge(new_id[e.u], new_id[e.v], e.label);
  }
  return std::move(b).Build();
}

Graph RandomConnectedGraph(Rng* rng, size_t nodes, size_t extra_edges,
                           size_t label_count) {
  GraphBuilder b;
  for (size_t i = 0; i < nodes; ++i) {
    b.AddNode(static_cast<Label>(rng->Below(label_count)));
  }
  for (NodeId i = 1; i < nodes; ++i) {
    (void)b.AddEdge(i, static_cast<NodeId>(rng->Below(i)));
  }
  for (size_t i = 0; i < extra_edges; ++i) {
    NodeId u = static_cast<NodeId>(rng->Below(nodes));
    NodeId v = static_cast<NodeId>(rng->Below(nodes));
    if (u != v) (void)b.AddEdge(u, v);
  }
  return std::move(b).Build();
}

TEST(DfsCodeTest, SingleEdgeCode) {
  Graph g = MakeGraph({kS, kC}, {{0, 1}});
  DfsCode code = MinimumDfsCode(g);
  ASSERT_EQ(code.size(), 1u);
  // Minimum orientation puts the smaller label first: C(0) before S(1).
  EXPECT_EQ(code[0].from_label, kC);
  EXPECT_EQ(code[0].to_label, kS);
}

TEST(DfsCodeTest, RoundTripThroughGraph) {
  Graph g = MakeGraph({kC, kS, kO, kC}, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  DfsCode code = MinimumDfsCode(g);
  Graph back = GraphFromDfsCode(code);
  EXPECT_TRUE(AreIsomorphic(g, back));
}

TEST(DfsCodeTest, StringRoundTrip) {
  Graph g = MakeGraph({kC, kS, kO}, {{0, 1}, {1, 2}, {0, 2}});
  DfsCode code = MinimumDfsCode(g);
  Result<DfsCode> parsed = DfsCodeFromString(DfsCodeToString(code));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, code);
}

TEST(DfsCodeTest, FromStringRejectsGarbage) {
  EXPECT_FALSE(DfsCodeFromString("").ok());
  EXPECT_FALSE(DfsCodeFromString("1,2,3").ok());
  EXPECT_FALSE(DfsCodeFromString("a,b,c,d,e;").ok());
}

TEST(DfsCodeTest, FromStringRejectsOutOfRangeFields) {
  // Negative vertex index / label.
  EXPECT_EQ(DfsCodeFromString("-1,1,0,0,0;").status().code(),
            Status::Code::kCorruption);
  EXPECT_EQ(DfsCodeFromString("0,1,0,-5,0;").status().code(),
            Status::Code::kCorruption);
  // Vertex index beyond the structural bound (edge i references ≤ i+1):
  // the first edge may only touch vertices 0 and 1. A huge index would
  // also balloon GraphFromDfsCode's label table if let through.
  EXPECT_EQ(DfsCodeFromString("0,2,0,0,0;").status().code(),
            Status::Code::kCorruption);
  EXPECT_EQ(DfsCodeFromString("0,1000000,0,0,0;").status().code(),
            Status::Code::kCorruption);
  // Label beyond the 32-bit Label range (parses as long, must not be
  // silently truncated by the narrowing cast).
  EXPECT_EQ(DfsCodeFromString("0,1,0,0,4294967296;").status().code(),
            Status::Code::kCorruption);
  // Value overflowing even `long` (std::out_of_range path).
  EXPECT_EQ(
      DfsCodeFromString("0,1,0,0,99999999999999999999999999;").status().code(),
      Status::Code::kCorruption);
  // Numeric prefix with trailing junk must not silently parse.
  EXPECT_EQ(DfsCodeFromString("0,1,0,0,7junk;").status().code(),
            Status::Code::kCorruption);
  // Second edge may reference vertex 2 (forward growth) but not 3.
  EXPECT_TRUE(DfsCodeFromString("0,1,0,0,0;1,2,0,0,0;").ok());
  EXPECT_EQ(DfsCodeFromString("0,1,0,0,0;1,3,0,0,0;").status().code(),
            Status::Code::kCorruption);
}

TEST(DfsCodeTest, IsMinimumAcceptsMinimum) {
  Graph g = MakeGraph({kC, kC, kS}, {{0, 1}, {1, 2}});
  EXPECT_TRUE(IsMinimumDfsCode(MinimumDfsCode(g)));
}

TEST(DfsCodeTest, IsMinimumRejectsNonMinimum) {
  // Spell the path S-C-C starting from the S end: (0,1,S,0,C)(1,2,C,0,C)
  // is a valid DFS code but not minimal (C-first is smaller).
  DfsCode code = {{0, 1, kS, 0, kC}, {1, 2, kC, 0, kC}};
  EXPECT_FALSE(IsMinimumDfsCode(code));
}

TEST(DfsCodeTest, RightmostPathOfPathGraph) {
  Graph g = MakeGraph({kC, kC, kC}, {{0, 1}, {1, 2}});
  DfsCode code = MinimumDfsCode(g);
  std::vector<int> path = RightmostPath(code);
  EXPECT_EQ(path, (std::vector<int>{0, 1, 2}));
}

TEST(CanonicalTest, PaperQueryGraphCode) {
  // Figure 1(a)-style query: ring of 5 C with branches — just assert the
  // code is stable and reproducible.
  Graph g = MakeGraph({kC, kC, kC, kC, kC},
                      {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
  EXPECT_EQ(GetCanonicalCode(g), GetCanonicalCode(g));
}

class CanonicalPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CanonicalPropertyTest, InvariantUnderPermutation) {
  Rng rng(GetParam());
  Graph g = RandomConnectedGraph(&rng, 3 + rng.Below(5), rng.Below(4), 3);
  Graph h = Permute(g, &rng);
  EXPECT_EQ(GetCanonicalCode(g), GetCanonicalCode(h));
}

TEST_P(CanonicalPropertyTest, MinCodeIsMinOverPermutations) {
  Rng rng(GetParam() ^ 0x77);
  Graph g = RandomConnectedGraph(&rng, 3 + rng.Below(4), rng.Below(3), 2);
  DfsCode min_code = MinimumDfsCode(g);
  EXPECT_TRUE(IsMinimumDfsCode(min_code));
}

TEST_P(CanonicalPropertyTest, DistinguishesNonIsomorphicPairs) {
  Rng rng(GetParam() ^ 0x3131);
  Graph a = RandomConnectedGraph(&rng, 4 + rng.Below(3), rng.Below(3), 2);
  Graph b = RandomConnectedGraph(&rng, 4 + rng.Below(3), rng.Below(3), 2);
  bool iso = BruteForceIsomorphic(a, b);
  EXPECT_EQ(GetCanonicalCode(a) == GetCanonicalCode(b), iso);
}

TEST_P(CanonicalPropertyTest, CamCodeAgreesWithDfsCodeOnIsoClasses) {
  // The paper's CAM code and our production min-DFS code must induce the
  // same isomorphism classes.
  Rng rng(GetParam() ^ 0x4242);
  Graph a = RandomConnectedGraph(&rng, 3 + rng.Below(3), rng.Below(3), 2);
  Graph b = RandomConnectedGraph(&rng, 3 + rng.Below(3), rng.Below(3), 2);
  bool dfs_equal = GetCanonicalCode(a) == GetCanonicalCode(b);
  bool cam_equal = CamCode(a) == CamCode(b);
  EXPECT_EQ(dfs_equal, cam_equal);
}

TEST_P(CanonicalPropertyTest, CamCodeInvariantUnderPermutation) {
  Rng rng(GetParam() ^ 0x5555);
  Graph g = RandomConnectedGraph(&rng, 3 + rng.Below(4), rng.Below(3), 3);
  Graph h = Permute(g, &rng);
  EXPECT_EQ(CamCode(g), CamCode(h));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CanonicalPropertyTest,
                         ::testing::Range<uint64_t>(0, 30));

}  // namespace
}  // namespace prague
