// PragueServer — the network face of the engine.
//
// The deployed shape the paper implies: the engine runs in a server
// process while visual front-ends formulate queries over the network.
// One TCP connection maps to one ManagedSession from a shared
// SessionManager, so every concurrency guarantee of the session layer
// (snapshot pinning, COW publish-while-serving, per-session run budgets,
// cross-thread cancellation) is exposed end-to-end on the wire.
//
// Threading:
//  - A dedicated accept thread hands each connection to the shared
//    util/thread_pool; a connection occupies one pool slot for its whole
//    life (handlers block in recv), so `worker_threads` bounds the number
//    of concurrently *served* connections — later ones queue in accept
//    order until a slot frees.
//  - RUN is the one command executed asynchronously: the handler starts
//    it on a per-connection run thread and keeps reading the socket, so a
//    CANCEL frame arriving mid-RUN reaches ManagedSession::Cancel() while
//    the run is still in flight. Any other command during a RUN is
//    rejected with FailedPrecondition. The run thread itself writes the
//    RUN reply (socket writes are serialized per connection).
//
// Stop() is graceful: it shuts down the listener and every live
// connection socket, cancels in-flight runs, and joins everything before
// returning, so a server object can be destroyed the line after.

#ifndef PRAGUE_SERVER_PRAGUE_SERVER_H_
#define PRAGUE_SERVER_PRAGUE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "core/session_manager.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace prague {

/// \brief Server knobs.
struct PragueServerOptions {
  /// TCP port to listen on; 0 picks an ephemeral port (port() reports it).
  uint16_t port = 0;
  /// Connection-handler pool size; 0 = max(8, hardware_concurrency).
  size_t worker_threads = 0;
  /// When >= 0, every OPEN without an explicit timeout gets this Run()
  /// budget (milliseconds, 0 = unbounded) instead of the manager default.
  int64_t default_run_deadline_ms = -1;
  /// listen(2) backlog.
  int backlog = 64;
  /// When >= 0, a RUN whose round trip takes at least this many
  /// milliseconds logs its full RunTrace at Warning level (slow-query
  /// log). 0 logs every run; -1 (default) disables the log.
  int64_t slow_query_ms = -1;
};

/// \brief TCP server exposing a SessionManager over the wire protocol of
/// server/wire.h. The manager must outlive the server.
class PragueServer {
 public:
  explicit PragueServer(SessionManager* manager,
                        PragueServerOptions options = PragueServerOptions());
  ~PragueServer();

  PragueServer(const PragueServer&) = delete;
  PragueServer& operator=(const PragueServer&) = delete;

  /// \brief Binds, listens, and starts accepting. Fails without side
  /// effects if the port cannot be bound.
  Status Start();

  /// \brief Stops accepting, disconnects every client (in-flight runs are
  /// cancelled), and joins all server threads. Idempotent.
  void Stop();

  /// \brief The bound port (after a successful Start()).
  uint16_t port() const { return port_; }
  /// \brief True between a successful Start() and Stop().
  bool running() const { return running_.load(); }
  /// \brief Connections accepted since Start().
  uint64_t connections_accepted() const { return connections_accepted_.load(); }

 private:
  struct Connection;

  void AcceptLoop();
  void ServeConnection(int fd);
  // Dispatches one parsed command; returns false when the connection
  // should close (CLOSE command). Replies are sent inside.
  bool HandleCommand(Connection& conn, const struct WireCommand& cmd);
  void StartRun(Connection& conn, uint64_t limit);
  static void JoinRunThread(Connection& conn);

  SessionManager* manager_;
  PragueServerOptions options_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> connections_accepted_{0};
  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> pool_;

  // Live connection sockets, so Stop() can shut them down to unblock
  // handlers parked in recv().
  std::mutex conns_mu_;
  std::unordered_set<int> live_fds_;
};

}  // namespace prague

#endif  // PRAGUE_SERVER_PRAGUE_SERVER_H_
