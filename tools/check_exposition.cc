// Exposition lint: boots a real in-process stack (SessionManager +
// PragueServer + Watchdog + HttpExporter), drives labeled-tenant traffic
// through a wire client, scrapes GET /metrics over a raw socket exactly
// like Prometheus would, and validates the text-exposition grammar:
//
//   - every sample's base metric has a preceding `# TYPE` line,
//   - no metric declares TYPE twice, no series appears twice,
//   - histogram `le` buckets are cumulative and end at `+Inf` == `_count`,
//   - the per-tenant series promised by the docs actually show up,
//   - /healthz, /readyz, /statusz and /tracez answer 200 alongside.
//
// Runs as a ctest (`exposition_lint`) and in the server-sanitizer CI job:
// a malformed scrape is a break for every operator dashboard downstream,
// so it fails the build, not a human eyeball.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/session_manager.h"
#include "graph/graph.h"
#include "graph/graph_database.h"
#include "index/action_aware_index.h"
#include "index/database_snapshot.h"
#include "mining/gspan.h"
#include "obs/http_exporter.h"
#include "obs/watchdog.h"
#include "server/prague_client.h"
#include "server/prague_server.h"

namespace prague {
namespace {

int g_failures = 0;

void Fail(const std::string& message) {
  std::fprintf(stderr, "exposition-lint: FAIL: %s\n", message.c_str());
  ++g_failures;
}

#define CHECK_THAT(cond, message)           \
  do {                                      \
    if (!(cond)) Fail(message);             \
  } while (0)

// ---------------------------------------------------------------------------
// Fixture: a small labeled database -> mined, indexed, served.

Graph MakeGraph(const std::vector<Label>& labels,
                const std::vector<std::pair<NodeId, NodeId>>& edges) {
  GraphBuilder b;
  for (Label l : labels) b.AddNode(l);
  for (auto [u, v] : edges) {
    Result<EdgeId> r = b.AddEdge(u, v, 0);
    if (!r.ok()) std::abort();
  }
  return std::move(b).Build();
}

SnapshotPtr MakeSnapshot() {
  GraphDatabase db;
  db.mutable_labels()->Intern("C");
  db.mutable_labels()->Intern("S");
  db.mutable_labels()->Intern("O");
  db.Add(MakeGraph({0, 0, 0, 1}, {{0, 1}, {1, 2}, {0, 2}, {0, 3}}));
  db.Add(MakeGraph({0, 1, 0, 0}, {{0, 1}, {1, 2}, {2, 3}}));
  db.Add(MakeGraph({0, 1, 2, 0}, {{0, 1}, {0, 2}, {0, 3}}));
  db.Add(MakeGraph({0, 0, 1, 0}, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}));
  MiningConfig mining;
  mining.min_support_ratio = 0.34;
  mining.max_fragment_edges = 4;
  Result<MiningResult> mined = MineFragments(db, mining);
  if (!mined.ok()) std::abort();
  ActionAwareIndexes indexes = BuildActionAwareIndexes(*mined, A2fConfig{});
  return DatabaseSnapshot::Make(std::move(db), std::move(indexes), 0);
}

// ---------------------------------------------------------------------------
// A scrape client speaking exactly what Prometheus speaks.

std::string HttpGet(uint16_t port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) std::abort();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Fail("connect to exporter: " + std::string(strerror(errno)));
    ::close(fd);
    return "";
  }
  std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: lint\r\nConnection: close\r\n\r\n";
  size_t off = 0;
  while (off < request.size()) {
    ssize_t n =
        ::send(fd, request.data() + off, request.size() - off, MSG_NOSIGNAL);
    if (n <= 0) break;
    off += static_cast<size_t>(n);
  }
  std::string response;
  char buf[8192];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string BodyOf(const std::string& response) {
  size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? std::string()
                                    : response.substr(split + 4);
}

bool Is200(const std::string& response) {
  return response.rfind("HTTP/1.1 200", 0) == 0;
}

// ---------------------------------------------------------------------------
// Grammar checks over the exposition body.

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t eol = text.find('\n', start);
    if (eol == std::string::npos) eol = text.size();
    lines.push_back(text.substr(start, eol - start));
    start = eol + 1;
  }
  return lines;
}

// "name{labels} value" -> (name, labels-or-empty, value). False = not a
// sample line.
bool ParseSample(const std::string& line, std::string* name,
                 std::string* labels, double* value) {
  if (line.empty() || line[0] == '#') return false;
  size_t space = line.rfind(' ');
  if (space == std::string::npos) return false;
  char* end = nullptr;
  const char* value_str = line.c_str() + space + 1;
  *value = std::strtod(value_str, &end);
  bool inf = std::strncmp(value_str, "+Inf", 4) == 0;
  if (!inf && (end == value_str || *end != '\0')) return false;
  std::string series = line.substr(0, space);
  size_t brace = series.find('{');
  if (brace == std::string::npos) {
    *name = series;
    labels->clear();
  } else {
    if (series.back() != '}') return false;
    *name = series.substr(0, brace);
    *labels = series.substr(brace + 1, series.size() - brace - 2);
  }
  return true;
}

// A sample's base family: strips the histogram suffixes so the TYPE lookup
// works for `_bucket` / `_sum` / `_count` lines.
std::string BaseFamily(const std::string& name,
                       const std::set<std::string>& typed) {
  if (typed.count(name)) return name;
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    size_t len = std::strlen(suffix);
    if (name.size() > len &&
        name.compare(name.size() - len, len, suffix) == 0) {
      std::string base = name.substr(0, name.size() - len);
      if (typed.count(base)) return base;
    }
  }
  return "";
}

// Labels string minus the le pair, plus the le value — so bucket series of
// one (metric, labelset) can be grouped and checked for cumulativeness.
void SplitLe(const std::string& labels, std::string* rest, std::string* le) {
  rest->clear();
  le->clear();
  size_t pos = 0;
  while (pos < labels.size()) {
    size_t eq = labels.find('=', pos);
    if (eq == std::string::npos) break;
    std::string key = labels.substr(pos, eq - pos);
    size_t vstart = eq + 2;  // skip ="
    size_t vend = vstart;
    while (vend < labels.size() &&
           !(labels[vend] == '"' && labels[vend - 1] != '\\')) {
      ++vend;
    }
    std::string value = labels.substr(vstart, vend - vstart);
    if (key == "le") {
      *le = value;
    } else {
      if (!rest->empty()) *rest += ',';
      *rest += key + "=\"" + value + "\"";
    }
    pos = vend + 1;
    if (pos < labels.size() && labels[pos] == ',') ++pos;
  }
}

void LintExposition(const std::string& body) {
  CHECK_THAT(!body.empty(), "/metrics body is empty");
  CHECK_THAT(body.empty() || body.back() == '\n',
             "exposition must end with a newline");

  std::map<std::string, std::string> type_of;  // family -> counter/gauge/...
  std::set<std::string> typed;
  std::set<std::string> seen_series;
  // (family, labelset) -> ordered buckets as (le, value).
  std::map<std::string, std::vector<std::pair<std::string, double>>> buckets;
  std::map<std::string, double> counts;  // (family, labelset) -> _count

  for (const std::string& line : SplitLines(body)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      size_t space = line.find(' ', 7);
      CHECK_THAT(space != std::string::npos, "malformed TYPE line: " + line);
      if (space == std::string::npos) continue;
      std::string family = line.substr(7, space - 7);
      std::string kind = line.substr(space + 1);
      CHECK_THAT(kind == "counter" || kind == "gauge" || kind == "histogram",
                 "unknown TYPE kind: " + line);
      CHECK_THAT(!type_of.count(family), "duplicate TYPE for " + family);
      type_of[family] = kind;
      typed.insert(family);
      continue;
    }
    if (line[0] == '#') continue;  // HELP/comments: ignored
    std::string name, labels;
    double value = 0;
    CHECK_THAT(ParseSample(line, &name, &labels, &value),
               "unparseable sample line: " + line);
    if (!ParseSample(line, &name, &labels, &value)) continue;
    std::string family = BaseFamily(name, typed);
    CHECK_THAT(!family.empty(), "sample without a preceding TYPE: " + line);
    std::string series = name + "{" + labels + "}";
    CHECK_THAT(!seen_series.count(series), "duplicate series: " + series);
    seen_series.insert(series);

    if (name == family + "_bucket") {
      std::string rest, le;
      SplitLe(labels, &rest, &le);
      CHECK_THAT(!le.empty(), "bucket without an le label: " + line);
      buckets[family + "{" + rest + "}"].emplace_back(le, value);
    } else if (name == family + "_count") {
      counts[family + "{" + labels + "}"] = value;
    }
  }

  for (const auto& [key, series] : buckets) {
    double prev = -1;
    for (const auto& [le, value] : series) {
      CHECK_THAT(value >= prev,
                 "non-cumulative buckets in " + key + " at le=" + le);
      prev = value;
    }
    CHECK_THAT(!series.empty() && series.back().first == "+Inf",
               "bucket series " + key + " does not end at le=\"+Inf\"");
    auto count = counts.find(key);
    CHECK_THAT(count != counts.end(), "buckets without _count in " + key);
    if (count != counts.end() && !series.empty()) {
      CHECK_THAT(series.back().second == count->second,
                 "+Inf bucket != _count in " + key);
    }
  }

  // The labeled families the operator docs promise.
  CHECK_THAT(
      body.find("prague_server_tenant_admitted_total{tenant=\"") !=
          std::string::npos,
      "missing per-tenant admitted series");
  CHECK_THAT(body.find("prague_server_tenant_run_latency_us_bucket{tenant=") !=
                 std::string::npos,
             "missing per-tenant latency histogram");
  CHECK_THAT(body.find("prague_watchdog_ticks_total") != std::string::npos,
             "missing watchdog tick counter");
  CHECK_THAT(body.find("prague_http_requests_total") != std::string::npos,
             "missing exporter self-metrics");
  CHECK_THAT(body.find("prague_log_suppressed_total") != std::string::npos,
             "missing log-suppression callback counter");
}

int Main() {
  SessionManager manager(MakeSnapshot());

  obs::Watchdog watchdog;
  watchdog.set_trace_ring(&manager.mutable_traces());

  PragueServerOptions options;
  options.port = 0;
  options.worker_threads = 4;
  options.watchdog = &watchdog;
  PragueServer server(&manager, options);
  Status started = server.Start();
  if (!started.ok()) {
    Fail("server start: " + started.ToString());
    return 1;
  }
  watchdog.Start();

  obs::HttpExporterHooks hooks;
  hooks.ready = [&server] { return server.running(); };
  hooks.statusz_json = [] { return std::string("{\"lint\":true}"); };
  hooks.traces = [&manager] { return manager.traces().Recent(); };
  obs::HttpExporter exporter({}, hooks);
  started = exporter.Start();
  if (!started.ok()) {
    Fail("exporter start: " + started.ToString());
    server.Stop();
    watchdog.Stop();
    return 1;
  }

  // Labeled traffic from two tenants so tenant series exist to lint.
  for (const char* tenant : {"lint-a", "lint-b"}) {
    PragueClient client;
    if (!client.Connect("127.0.0.1", server.port()).ok() ||
        !client.Open(-1, tenant).ok()) {
      Fail("wire client could not open a session");
      break;
    }
    (void)client.AddEdge(1, "C", 2, "S");
    Result<RunReply> run = client.Run();
    CHECK_THAT(run.ok(), "RUN failed during lint traffic");
    client.Close();
  }

  const uint16_t port = exporter.port();
  std::string metrics = HttpGet(port, "/metrics");
  CHECK_THAT(Is200(metrics), "/metrics did not answer 200");
  CHECK_THAT(metrics.find("text/plain; version=0.0.4") != std::string::npos,
             "/metrics missing the Prometheus content type");
  LintExposition(BodyOf(metrics));

  CHECK_THAT(Is200(HttpGet(port, "/healthz")), "/healthz did not answer 200");
  CHECK_THAT(Is200(HttpGet(port, "/readyz")), "/readyz did not answer 200");
  CHECK_THAT(Is200(HttpGet(port, "/statusz")), "/statusz did not answer 200");
  std::string tracez = HttpGet(port, "/tracez");
  CHECK_THAT(Is200(tracez), "/tracez did not answer 200");
  CHECK_THAT(BodyOf(tracez).find("\"traces\":[") != std::string::npos,
             "/tracez is not a trace array");

  exporter.Stop();
  server.Stop();
  watchdog.Stop();

  if (g_failures == 0) {
    std::printf("exposition-lint: OK (%zu bytes of exposition)\n",
                BodyOf(metrics).size());
    return 0;
  }
  std::fprintf(stderr, "exposition-lint: %d failure(s)\n", g_failures);
  return 1;
}

}  // namespace
}  // namespace prague

int main() { return prague::Main(); }
