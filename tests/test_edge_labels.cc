// Edge-labeled graphs end-to-end: the paper's model allows edge labels
// (ψ : E → ΣEℓ); this suite drives bond-labeled molecules through every
// layer — canonical codes, mining, indexes, SPIGs, sessions — and checks
// the results against label-aware oracles.

#include <gtest/gtest.h>

#include <map>

#include "core/prague_session.h"
#include "datasets/aids_generator.h"
#include "datasets/query_workload.h"
#include "graph/brute_force_iso.h"
#include "graph/vf2.h"
#include "index/action_aware_index.h"
#include "test_fixtures.h"
#include "util/rng.h"

namespace prague {
namespace {

// Bond-labeled fixture, built once.
struct BondFixture {
  GraphDatabase db;
  MiningResult mined;
  ActionAwareIndexes indexes;
  SnapshotPtr snapshot;  // Borrow is safe: immortal static

  static const BondFixture& Get() {
    static BondFixture* fixture = [] {
      auto* f = new BondFixture();
      AidsGeneratorConfig config;
      config.graph_count = 200;
      config.seed = 77;
      config.bond_labels = true;
      f->db = GenerateAidsLikeDatabase(config);
      MiningConfig mining;
      mining.min_support_ratio = 0.1;
      mining.max_fragment_edges = 6;
      Result<MiningResult> mined = MineFragments(f->db, mining);
      if (!mined.ok()) std::abort();
      f->mined = std::move(*mined);
      A2fConfig a2f;
      a2f.beta = 3;
      f->indexes = BuildActionAwareIndexes(f->mined, a2f);
      f->snapshot = DatabaseSnapshot::Borrow(&f->db, &f->indexes);
      return f;
    }();
    return *fixture;
  }
};

TEST(EdgeLabelTest, GeneratorProducesBothBondTypes) {
  const BondFixture& fixture = BondFixture::Get();
  size_t single = 0, dbl = 0;
  for (GraphId gid = 0; gid < fixture.db.size(); ++gid) {
    const Graph& g = fixture.db.graph(gid);
    for (const Edge& e : g.edges()) {
      (e.label == 0 ? single : dbl)++;
    }
  }
  EXPECT_GT(single, dbl);  // singles dominate
  EXPECT_GT(dbl, 0u);
}

TEST(EdgeLabelTest, CanonicalCodeSeparatesBondTypes) {
  GraphBuilder a;
  NodeId a1 = a.AddNode(0), a2 = a.AddNode(0);
  ASSERT_TRUE(a.AddEdge(a1, a2, 0).ok());
  GraphBuilder b;
  NodeId b1 = b.AddNode(0), b2 = b.AddNode(0);
  ASSERT_TRUE(b.AddEdge(b1, b2, 1).ok());
  EXPECT_NE(GetCanonicalCode(std::move(a).Build()),
            GetCanonicalCode(std::move(b).Build()));
}

TEST(EdgeLabelTest, MinedFsgIdsAreLabelExact) {
  const BondFixture& fixture = BondFixture::Get();
  // Check a sample of fragments (the fixture has hundreds).
  size_t checked = 0;
  for (const MinedFragment& f : fixture.mined.frequent) {
    if (f.size() < 2 || checked >= 10) continue;
    ++checked;
    for (GraphId gid = 0; gid < fixture.db.size(); ++gid) {
      EXPECT_EQ(f.fsg_ids.Contains(gid),
                IsSubgraphIsomorphic(f.graph, fixture.db.graph(gid)))
          << f.code << " g" << gid;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(EdgeLabelTest, Vf2MatchesBruteForceWithEdgeLabels) {
  Rng rng(17);
  const BondFixture& fixture = BondFixture::Get();
  WorkloadGenerator workload(&fixture.db, 17);
  for (int trial = 0; trial < 10; ++trial) {
    Result<VisualQuerySpec> spec = workload.ContainmentQuery(4, "el");
    ASSERT_TRUE(spec.ok());
    GraphId gid = static_cast<GraphId>(rng.Below(fixture.db.size()));
    const Graph& g = fixture.db.graph(gid);
    EXPECT_EQ(IsSubgraphIsomorphic(spec->graph, g),
              BruteForceSubgraphIsomorphic(spec->graph, g));
  }
}

TEST(EdgeLabelTest, SessionEndToEndWithBondLabels) {
  const BondFixture& fixture = BondFixture::Get();
  WorkloadGenerator workload(&fixture.db, 23);
  Result<VisualQuerySpec> spec = workload.ContainmentQuery(5, "bonds");
  ASSERT_TRUE(spec.ok());
  PragueSession session(fixture.snapshot);
  std::map<NodeId, NodeId> node_map;
  auto user_node = [&](NodeId n) {
    auto it = node_map.find(n);
    if (it != node_map.end()) return it->second;
    NodeId u = session.AddNode(spec->graph.NodeLabel(n));
    node_map.emplace(n, u);
    return u;
  };
  for (EdgeId e : spec->sequence) {
    const Edge& edge = spec->graph.GetEdge(e);
    ASSERT_TRUE(
        session.AddEdge(user_node(edge.u), user_node(edge.v), edge.label)
            .ok());
  }
  Result<QueryResults> results = session.Run(nullptr);
  ASSERT_TRUE(results.ok());
  // Exact answers must match the label-aware VF2 scan.
  std::vector<GraphId> expected;
  for (GraphId gid = 0; gid < fixture.db.size(); ++gid) {
    if (IsSubgraphIsomorphic(spec->graph, fixture.db.graph(gid))) {
      expected.push_back(gid);
    }
  }
  EXPECT_EQ(results->exact, expected);
  EXPECT_FALSE(results->exact.empty());
}

TEST(EdgeLabelTest, SimilaritySearchRespectsBondLabels) {
  const BondFixture& fixture = BondFixture::Get();
  WorkloadGenerator workload(&fixture.db, 29);
  Result<VisualQuerySpec> spec = workload.SimilarityQuery(5, 1, "bsim");
  ASSERT_TRUE(spec.ok());
  PragueSession session(fixture.snapshot);
  std::map<NodeId, NodeId> node_map;
  auto user_node = [&](NodeId n) {
    auto it = node_map.find(n);
    if (it != node_map.end()) return it->second;
    NodeId u = session.AddNode(spec->graph.NodeLabel(n));
    node_map.emplace(n, u);
    return u;
  };
  for (EdgeId e : spec->sequence) {
    const Edge& edge = spec->graph.GetEdge(e);
    ASSERT_TRUE(
        session.AddEdge(user_node(edge.u), user_node(edge.v), edge.label)
            .ok());
  }
  Result<QueryResults> results = session.Run(nullptr);
  ASSERT_TRUE(results.ok());
  ASSERT_TRUE(results->similarity);
  auto expected = testing::BruteForceSimilaritySearch(
      fixture.db, spec->graph, session.sigma());
  std::map<GraphId, int> expected_by_id(expected.begin(), expected.end());
  ASSERT_EQ(results->similar.size(), expected.size());
  for (const SimilarMatch& m : results->similar) {
    ASSERT_TRUE(expected_by_id.contains(m.gid)) << m.gid;
    EXPECT_EQ(m.distance, expected_by_id[m.gid]);
  }
}

}  // namespace
}  // namespace prague
