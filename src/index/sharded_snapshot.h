// ShardedSnapshot: a partitioned view over one DatabaseSnapshot.
//
// PRAGUE's database is a set of independent data graphs, so every
// expensive RUN phase — Algorithm-4 candidate derivation, exact
// verification, MCCS similarity — partitions cleanly by graph id. A
// ShardedSnapshot splits the id space [0, |D|) into N contiguous ranges
// (shards); each shard owns a slice of every A2F/A2I FSG id set restricted
// to its range, so a shard task resolves candidates against its slice
// without touching (or locking) another shard's ids. The union of the
// slices is exactly the global set, which is what makes scatter/gather
// results bit-identical to the single-threaded path (core/shard_exec.h).
//
// Copy-on-write across versions: slicing reuses the base set's buffer
// whenever the whole set falls inside one shard (IdSet::Slice), and
// Append() reuses interior shard objects wholesale. The latter is sound
// because COW AppendGraphs (index/index_maintenance.h) never changes which
// fragments are indexed and only extends FSG sets with ids >= the old
// database size — interior ranges end at or below the old size, so their
// slices cannot have changed. Publish-while-querying therefore keeps
// working per shard: sessions pin the sharded view matching their pinned
// snapshot and never observe a successor's slices.

#ifndef PRAGUE_INDEX_SHARDED_SNAPSHOT_H_
#define PRAGUE_INDEX_SHARDED_SNAPSHOT_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "index/database_snapshot.h"
#include "util/id_set.h"
#include "util/thread_pool.h"

namespace prague {

/// \brief One contiguous graph-id range of a ShardedSnapshot plus its
/// A2F/A2I index slices. Immutable after construction.
class IndexShard {
 public:
  /// \brief First graph id owned by this shard.
  GraphId begin() const { return begin_; }
  /// \brief One past the last graph id owned by this shard.
  GraphId end() const { return end_; }
  /// \brief Number of graph ids in the range.
  size_t size() const { return end_ - begin_; }
  /// \brief Ordinal of this shard within its view.
  size_t ordinal() const { return ordinal_; }

  /// \brief FSG ids of A2F vertex \p id restricted to this shard's range.
  const IdSet& A2fFsgIds(A2fId id) const { return a2f_[id]; }
  /// \brief FSG ids of A2I entry \p id restricted to this shard's range.
  const IdSet& A2iFsgIds(A2iId id) const { return a2i_[id]; }

  /// \brief \p set ∩ [begin, end) — restriction of an arbitrary id set to
  /// this shard.
  IdSet Restrict(const IdSet& set) const { return set.Slice(begin_, end_); }

 private:
  friend class ShardedSnapshot;
  IndexShard(const DatabaseSnapshot& base, GraphId begin, GraphId end,
             size_t ordinal);

  GraphId begin_ = 0;
  GraphId end_ = 0;
  size_t ordinal_ = 0;
  std::vector<IdSet> a2f_;  // indexed by A2fId
  std::vector<IdSet> a2i_;  // indexed by A2iId
};

/// \brief Immutable N-way partition of one DatabaseSnapshot by graph id.
/// Shards are held by shared_ptr so successor views can share unchanged
/// ones structurally (the COW-preserving append).
class ShardedSnapshot {
 public:
  using Ptr = std::shared_ptr<const ShardedSnapshot>;

  /// \brief Partitions \p base into \p shards near-equal contiguous
  /// ranges. The count is clamped to [1, |D|] so every shard is non-empty
  /// (an empty database yields one empty shard).
  static Ptr Make(SnapshotPtr base, size_t shards);

  /// \brief View of \p next (a COW-append successor of \p prior's base)
  /// that reuses every interior shard of \p prior unchanged and rebuilds
  /// only the last shard over its extended range. Falls back to a full
  /// Make() — same shard count, fresh boundaries — when the append is not
  /// a pure extension or the last shard has grown past twice the mean
  /// (unbounded skew would defeat the parallelism the view exists for).
  static Ptr Append(const Ptr& prior, SnapshotPtr next);

  /// \brief The underlying snapshot.
  const SnapshotPtr& base() const { return base_; }
  /// \brief Version of the underlying snapshot.
  uint64_t version() const { return base_->version(); }
  /// \brief Number of shards (>= 1).
  size_t shard_count() const { return shards_.size(); }
  /// \brief Shard by ordinal.
  const IndexShard& shard(size_t i) const { return *shards_[i]; }
  /// \brief Shared handle to a shard — exposed so tests can prove the
  /// append path reuses interior shards structurally.
  const std::shared_ptr<const IndexShard>& shard_ptr(size_t i) const {
    return shards_[i];
  }

  /// \brief True iff this view partitions exactly \p snap (pointer
  /// identity — sessions pin snapshots by shared_ptr).
  bool Covers(const DatabaseSnapshot& snap) const {
    return base_.get() == &snap;
  }

  ShardedSnapshot(const ShardedSnapshot&) = delete;
  ShardedSnapshot& operator=(const ShardedSnapshot&) = delete;

 private:
  ShardedSnapshot() = default;

  SnapshotPtr base_;
  std::vector<std::shared_ptr<const IndexShard>> shards_;
};

/// \brief How one Run() scatters: which partitioned view to use and which
/// pool the per-shard tasks execute on. Plain pointers — the session that
/// builds the plan owns (or pins) both for the duration of the run.
struct ShardPlan {
  const ShardedSnapshot* view = nullptr;
  ThreadPool* pool = nullptr;

  /// \brief Shards the plan scatters over (1 when unsharded).
  size_t shard_count() const { return view == nullptr ? 1 : view->shard_count(); }
  /// \brief True iff Run() should scatter: more than one shard and a pool
  /// to put the tasks on.
  bool active() const { return view != nullptr && view->shard_count() > 1; }
};

}  // namespace prague

#endif  // PRAGUE_INDEX_SHARDED_SNAPSHOT_H_
