// Text serialization in the gSpan transaction format:
//
//   t # <graph-id>
//   v <node-id> <label-string>
//   e <node-id> <node-id> <label-string>
//
// This is the de-facto interchange format of the frequent-subgraph-mining
// literature (gSpan, FG-index, Grafil all consume it), so datasets written
// by our generators can be compared against external tools.

#ifndef PRAGUE_GRAPH_GRAPH_IO_H_
#define PRAGUE_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "graph/graph_database.h"
#include "util/result.h"
#include "util/status.h"

namespace prague {

/// \brief Writes the whole database in gSpan transaction format.
Status WriteDatabase(const GraphDatabase& db, std::ostream* out);

/// \brief Writes the database to a file.
Status WriteDatabaseToFile(const GraphDatabase& db, const std::string& path);

/// \brief Parses a database from gSpan transaction format.
Result<GraphDatabase> ReadDatabase(std::istream* in);

/// \brief Parses a database from a file.
Result<GraphDatabase> ReadDatabaseFromFile(const std::string& path);

/// \brief Writes one graph (with a LabelDictionary for names).
void WriteGraph(const Graph& g, const LabelDictionary& labels,
                std::ostream* out);

/// \brief Parses a single graph given an existing dictionary; labels not in
/// the dictionary are interned.
Result<Graph> ParseGraph(const std::string& text, LabelDictionary* labels);

}  // namespace prague

#endif  // PRAGUE_GRAPH_GRAPH_IO_H_
