// PragueClient — C++ client for the PRAGUE wire protocol.
//
// Mirrors the session API one call per command: Connect, Open, AddEdge /
// DeleteEdge (edge-at-a-time formulation, exactly like the GUI), Run,
// Stats, Close. The plain calls are lock-step — each sends one request
// frame and blocks for its reply — with one exception: Cancel() only
// *sends* (the server never replies to CANCEL), so it is safe to call
// from a second thread while the first is blocked inside Run(); the
// pending Run then returns early with RunReply::truncated set.
//
// Pipelining. StartRun / StartBatchRun tag the request with a fresh
// request id (see server/wire.h) and return immediately; several may be
// in flight at once, and WaitRun / WaitBatchRun collect the replies in
// any order. Internally a single demultiplexer pairs reply frames with
// outstanding ids: whichever waiter is first to need a frame reads the
// socket and parks replies for the others ("reader lease"), so there is
// no background thread and a purely lock-step client costs exactly what
// it did before. A reply frame that matches no outstanding request is a
// protocol violation and poisons the connection with a typed
// Status::ProtocolError (not Corruption — the bytes are fine, the peer
// broke the pairing rules).
//
// A client drives one connection. Waiters on *different* request ids may
// block concurrently, and Cancel()/CancelRun() may be called from any
// thread; apart from that, do not call methods concurrently.

#ifndef PRAGUE_SERVER_PRAGUE_CLIENT_H_
#define PRAGUE_SERVER_PRAGUE_CLIENT_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "server/wire.h"
#include "util/result.h"
#include "util/status.h"

namespace prague {

/// \brief Client for one server connection.
class PragueClient {
 public:
  PragueClient() = default;
  ~PragueClient();

  PragueClient(const PragueClient&) = delete;
  PragueClient& operator=(const PragueClient&) = delete;

  /// \brief Connects to \p host:\p port (\p host is an IPv4 address or
  /// "localhost").
  Status Connect(const std::string& host, uint16_t port);
  /// \brief True while the socket is open.
  bool connected() const { return fd_ >= 0; }
  /// \brief Drops the connection without the CLOSE handshake.
  void Disconnect();

  /// \brief OPEN: starts the connection's session. \p timeout_ms >= 0
  /// sets this session's Run() budget (0 = unbounded); -1 keeps the
  /// server default. \p tenant names the admission group this connection
  /// joins for quota/rate purposes (server/wire.h); empty keeps the
  /// default of one tenant per connection. A server over quota answers
  /// with Status::Busy (IsBusy / BusyRetryAfterMillis).
  Result<OpenReply> Open(int64_t timeout_ms = -1,
                         const std::string& tenant = std::string());
  /// \brief ADD_EDGE: one formulation step. \p u and \p v are caller-
  /// chosen node handles; \p u_label / \p v_label are node label names
  /// from the database dictionary.
  Result<StepReply> AddEdge(uint32_t u, const std::string& u_label,
                            uint32_t v, const std::string& v_label,
                            Label edge_label = 0);
  /// \brief DELETE_EDGE: removes the edge between two node handles.
  Result<StepReply> DeleteEdge(uint32_t u, uint32_t v);
  /// \brief RUN: final results, lock-step. \p limit caps how many matches
  /// the reply lists (0 = all; RunReply::total_matches is always the full
  /// count).
  Result<RunReply> Run(uint64_t limit = 0);
  /// \brief CANCEL: fire-and-forget; cancels everything in flight on this
  /// connection. Callable from another thread while Run() blocks.
  Status Cancel();
  /// \brief STATS: manager-wide counters plus open sessions and their
  /// pinned versions.
  Result<StatsReply> Stats();
  /// \brief METRICS: the server's full Prometheus text exposition.
  Result<std::string> Metrics();
  /// \brief CLOSE handshake, then drops the connection.
  Status Close();

  // ---- pipelined runs ----

  /// \brief Sends an id-tagged RUN and returns its request id without
  /// waiting; pair with WaitRun. Several may be in flight at once (the
  /// server caps the depth — see PragueServerOptions::max_pipelined_runs).
  Result<uint64_t> StartRun(uint64_t limit = 0);
  /// \brief Blocks for the reply to StartRun(\p id). Ids may be awaited
  /// in any order, including from different threads.
  Result<RunReply> WaitRun(uint64_t id);
  /// \brief CANCEL <id>: fire-and-forget cancellation of one specific
  /// pipelined run (active or still queued). Callable from any thread.
  Status CancelRun(uint64_t id);

  /// \brief Sends an id-tagged BATCH_RUN of \p patterns (textual pattern
  /// syntax, one member each — see query/pattern_parser.h) and returns
  /// its request id; pair with WaitBatchRun.
  Result<uint64_t> StartBatchRun(const std::vector<std::string>& patterns,
                                 uint64_t limit = 0);
  /// \brief Blocks for the reply to StartBatchRun(\p id).
  Result<BatchRunReply> WaitBatchRun(uint64_t id);
  /// \brief StartBatchRun + WaitBatchRun in one blocking call.
  Result<BatchRunReply> BatchRun(const std::vector<std::string>& patterns,
                                 uint64_t limit = 0);

  /// \brief APPEND: durably adds a batch of data graphs (textual pattern
  /// syntax — new label names are allowed and interned server-side). The
  /// reply arrives only after the batch is WAL-durable on a `--data-dir`
  /// server and the successor snapshot is published. \p alpha > 0
  /// overrides the server's mining ratio for this batch; \p reclassify
  /// 0/1 overrides its σ-crossing repair default (-1 keeps either
  /// default). Lock-step, like Run().
  Result<AppendReply> Append(const std::vector<std::string>& patterns,
                             double alpha = -1, int reclassify = -1);

  /// \brief Session id / pinned version from the last successful Open().
  uint64_t session_id() const { return session_id_; }
  uint64_t session_version() const { return session_version_; }

 private:
  Status Send(const WireCommand& command);
  // Send + demuxed receive of the one reply for command.request_id.
  Result<std::string> RoundTrip(const WireCommand& command);
  // Registers `id` as outstanding (under demux_mu_).
  void RegisterOutstanding(uint64_t id);
  // Blocks until the reply tagged `id` arrives (or the stream dies),
  // reading the socket itself when no other waiter currently does.
  Result<std::string> WaitReply(uint64_t id);
  // Allocates a fresh nonzero request id.
  uint64_t NextRequestId();

  int fd_ = -1;
  // Guards frame writes so Cancel() can interleave with a blocked Run().
  std::mutex write_mu_;

  // Reply demultiplexer. `reader_active_` is the reader lease: at most
  // one waiter reads the socket at a time, parking replies for others in
  // `ready_`. `stream_error_` is sticky — once the stream is broken every
  // current and future wait fails with it.
  std::mutex demux_mu_;
  std::condition_variable demux_cv_;
  bool reader_active_ = false;
  std::set<uint64_t> outstanding_;
  std::map<uint64_t, std::string> ready_;
  Status stream_error_ = Status::OK();
  uint64_t next_request_id_ = 0;

  uint64_t session_id_ = 0;
  uint64_t session_version_ = 0;
};

}  // namespace prague

#endif  // PRAGUE_SERVER_PRAGUE_CLIENT_H_
