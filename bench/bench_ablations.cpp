// Ablation benchmarks for PRAGUE's design choices (DESIGN.md §4):
//
//  A. delId compression — stored index bytes with vs without the
//     delId(f) = fsgIds(f) \ ∪ children trick (Section III).
//  B. SPIG Fragment-List inheritance — per-query SPIG-set construction
//     cost with inheritance (Algorithm 2) vs decomposing every NIF and
//     probing the indexes directly (what a SPIG-less design would do).
//  C. Verification-free split — similarity result generation with Rfree
//     honored vs forcing every candidate through SimVerify (Algorithm 4's
//     reason to exist).
//  D. Verifier backend — plain VF2 SimVerify vs the label/degree
//     prefiltered FilteringVerifier (Section VI-C's replaceable seam).

#include <cstdio>

#include "bench_common.h"
#include "core/candidates.h"
#include "core/results.h"
#include "util/bytes.h"
#include "util/stopwatch.h"

using namespace prague;
using namespace prague::bench;

namespace {

// Ablation B: rebuild every NIF Fragment List by direct enumeration +
// index probing (no inheritance), timing the whole pass.
double DirectProbeSeconds(const VisualQuerySpec& spec,
                          const ActionAwareIndexes& indexes) {
  Stopwatch timer;
  const Graph& q = spec.graph;
  auto by_size = ConnectedEdgeSubsetsBySize(q);
  for (size_t k = 1; k <= q.EdgeCount(); ++k) {
    for (EdgeMask mask : by_size[k]) {
      Graph sub = ExtractEdgeSubgraph(q, mask).graph;
      CanonicalCode code = GetCanonicalCode(sub);
      if (indexes.a2f.Lookup(code) || indexes.a2i.Lookup(code)) continue;
      // NIF: decompose into every subgraph and probe both indexes — the
      // work inheritance avoids.
      auto sub_by_size = ConnectedEdgeSubsetsBySize(sub);
      for (size_t j = 1; j < k; ++j) {
        for (EdgeMask m2 : sub_by_size[j]) {
          Graph sub2 = ExtractEdgeSubgraph(sub, m2).graph;
          CanonicalCode code2 = GetCanonicalCode(sub2);
          (void)indexes.a2f.Lookup(code2);
          (void)indexes.a2i.Lookup(code2);
        }
      }
    }
  }
  return timer.ElapsedSeconds();
}

}  // namespace

int main() {
  Banner("Ablations: delId compression, SPIG inheritance, Rfree split",
         "AIDS-like dataset");
  Workbench bench = BuildAidsWorkbench(AidsGraphCount());
  std::vector<VisualQuerySpec> queries = AidsQueries(bench);

  // --- A: delId compression. ----------------------------------------
  std::printf("A. delId compression (A2F storage bytes)\n");
  {
    const A2FIndex& a2f = bench.indexes.a2f;
    TablePrinter table({"variant", "bytes", "MB"});
    table.AddRow({"delId-compressed", std::to_string(a2f.StorageBytes()),
                  Fmt(ToMegabytes(a2f.StorageBytes()))});
    table.AddRow({"full fsgIds", std::to_string(a2f.UncompressedBytes()),
                  Fmt(ToMegabytes(a2f.UncompressedBytes()))});
    table.Print();
    std::printf("saving: %.1f%%\n\n",
                100.0 * (1.0 - static_cast<double>(a2f.StorageBytes()) /
                                   static_cast<double>(
                                       a2f.UncompressedBytes())));
  }

  // --- B: inheritance vs direct probing. ------------------------------
  std::printf("B. SPIG construction: inheritance vs direct index probing\n");
  {
    TablePrinter table(
        {"query", "inheritance (ms)", "direct probing (ms)", "speedup"});
    for (const VisualQuerySpec& spec : queries) {
      Stopwatch timer;
      FormulatedQuery built = Formulate(spec, bench.indexes);
      double inherit_s = timer.ElapsedSeconds();
      double probe_s = DirectProbeSeconds(spec, bench.indexes);
      table.AddRow({spec.name, FmtMs(inherit_s), FmtMs(probe_s),
                    Fmt(probe_s / inherit_s, 1) + "x"});
    }
    table.Print();
    std::printf("\n");
  }

  // --- C: verification-free split. -------------------------------------
  std::printf("C. similarity generation: Rfree honored vs all-verified\n");
  {
    TablePrinter table({"query", "with Rfree (ms)", "all verified (ms)",
                        "vf2 calls saved"});
    int sigma = 3;
    for (const VisualQuerySpec& spec : queries) {
      FormulatedQuery built = Formulate(spec, bench.indexes);
      SimilarCandidates cands = SimilarSubCandidates(
          built.spigs, built.query.EdgeCount(), sigma, bench.indexes);
      // Variant: dump every Rfree id into Rver.
      SimilarCandidates all_ver = cands;
      for (auto& [level, ids] : all_ver.free) {
        all_ver.ver[level].UnionWith(ids);
        ids.Clear();
      }
      SimilarGenStats stats_free, stats_ver;
      Stopwatch t1;
      (void)SimilarResultsGen(spec.graph, built.spigs, cands, sigma,
                              bench.db, nullptr, &stats_free);
      double with_free = t1.ElapsedSeconds();
      Stopwatch t2;
      (void)SimilarResultsGen(spec.graph, built.spigs, all_ver, sigma,
                              bench.db, nullptr, &stats_ver);
      double all_verified = t2.ElapsedSeconds();
      table.AddRow({spec.name, FmtMs(with_free), FmtMs(all_verified),
                    std::to_string(stats_ver.vf2_calls -
                                   stats_free.vf2_calls)});
    }
    table.Print();
    std::printf("\n");
  }

  // --- D: verifier backend. --------------------------------------------
  std::printf("D. SimVerify backend: plain VF2 vs filtering prefilters\n");
  {
    TablePrinter table({"query", "plain (ms)", "filtering (ms)",
                        "plain vf2", "filtering vf2"});
    int sigma = 3;
    for (const VisualQuerySpec& spec : queries) {
      FormulatedQuery built = Formulate(spec, bench.indexes);
      SimilarCandidates cands = SimilarSubCandidates(
          built.spigs, built.query.EdgeCount(), sigma, bench.indexes);
      SimilarGenStats stats_plain, stats_filter;
      Stopwatch t1;
      (void)SimilarResultsGen(spec.graph, built.spigs, cands, sigma,
                              bench.db, nullptr, &stats_plain, 0, nullptr,
                              /*filtering_verifier=*/false);
      double plain_s = t1.ElapsedSeconds();
      Stopwatch t2;
      (void)SimilarResultsGen(spec.graph, built.spigs, cands, sigma,
                              bench.db, nullptr, &stats_filter, 0, nullptr,
                              /*filtering_verifier=*/true);
      double filter_s = t2.ElapsedSeconds();
      table.AddRow({spec.name, FmtMs(plain_s), FmtMs(filter_s),
                    std::to_string(stats_plain.vf2_calls),
                    std::to_string(stats_filter.vf2_calls)});
    }
    table.Print();
  }
  return 0;
}
