// Match explanations: witness/embedding consistency with the MCCS oracle.

#include <gtest/gtest.h>

#include "core/explain.h"
#include "datasets/query_workload.h"
#include "graph/mccs.h"
#include "graph/vf2.h"
#include "test_fixtures.h"

namespace prague {
namespace {

using testing::kC;
using testing::kN;
using testing::kS;

TEST(ExplainTest, ExactMatchCoversEverything) {
  const auto& fixture = testing::TinyFixture::Get();
  Graph q = testing::MakeGraph({kC, kC, kC, kS},
                               {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  Result<MatchExplanation> e = ExplainMatch(q, fixture.db.graph(0));
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->distance, 0);
  EXPECT_TRUE(e->missing_query_edges.empty());
  EXPECT_EQ(MaskSize(e->covered_query_edges),
            static_cast<int>(q.EdgeCount()));
  EXPECT_EQ(e->data_edges.size(), q.EdgeCount());
}

TEST(ExplainTest, ApproximateMatchIdentifiesMissingEdges) {
  const auto& fixture = testing::TinyFixture::Get();
  // Triangle with N pendant vs g0 (triangle with S pendant): the C-N edge
  // is the one miss.
  Graph q = testing::MakeGraph({kC, kC, kC, kN},
                               {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  Result<MatchExplanation> e = ExplainMatch(q, fixture.db.graph(0));
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->distance, 1);
  ASSERT_EQ(e->missing_query_edges.size(), 1u);
  EXPECT_EQ(e->missing_query_edges[0], 3u);  // the C-N edge
}

TEST(ExplainTest, EmbeddingIsLabelAndAdjacencyConsistent) {
  const auto& fixture = testing::AidsFixture::Get();
  WorkloadGenerator workload(&fixture.db, 55);
  Result<VisualQuerySpec> spec = workload.SimilarityQuery(6, 1, "ex");
  ASSERT_TRUE(spec.ok());
  size_t checked = 0;
  for (GraphId gid = 0; gid < fixture.db.size() && checked < 10; ++gid) {
    const Graph& g = fixture.db.graph(gid);
    Result<MatchExplanation> e = ExplainMatch(spec->graph, g);
    if (!e.ok()) continue;
    ++checked;
    // Distance agrees with the MCCS oracle.
    EXPECT_EQ(e->distance, ComputeMccs(spec->graph, g).distance);
    // Images respect labels and realize every covered edge.
    size_t covered_index = 0;
    for (EdgeId qe = 0; qe < spec->graph.EdgeCount(); ++qe) {
      if (!(e->covered_query_edges & EdgeBit(qe))) continue;
      const Edge& edge = spec->graph.GetEdge(qe);
      NodeId iu = e->node_image[edge.u];
      NodeId iv = e->node_image[edge.v];
      ASSERT_NE(iu, kInvalidNode);
      ASSERT_NE(iv, kInvalidNode);
      EXPECT_EQ(g.NodeLabel(iu), spec->graph.NodeLabel(edge.u));
      EXPECT_EQ(g.NodeLabel(iv), spec->graph.NodeLabel(edge.v));
      ASSERT_LT(covered_index, e->data_edges.size());
      const Edge& data_edge = g.GetEdge(e->data_edges[covered_index]);
      EXPECT_TRUE((data_edge.u == iu && data_edge.v == iv) ||
                  (data_edge.u == iv && data_edge.v == iu));
      ++covered_index;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(ExplainTest, NoCommonEdgeIsNotFound) {
  Graph q = testing::MakeGraph({kN, kN}, {{0, 1}});
  Graph g = testing::MakeGraph({kC, kC}, {{0, 1}});
  EXPECT_FALSE(ExplainMatch(q, g).ok());
}

TEST(ExplainTest, ToStringMentionsMissingEdges) {
  const auto& fixture = testing::TinyFixture::Get();
  Graph q = testing::MakeGraph({kC, kC, kC, kN},
                               {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  Result<MatchExplanation> e = ExplainMatch(q, fixture.db.graph(0));
  ASSERT_TRUE(e.ok());
  std::string text = ExplanationToString(*e, q, fixture.db.labels());
  EXPECT_NE(text.find("missing:"), std::string::npos);
  EXPECT_NE(text.find("N"), std::string::npos);
}

}  // namespace
}  // namespace prague
