// Index persistence. The paper's DF-index is disk-resident; this module
// provides the save/load path for both action-aware indexes. Fragments are
// serialized as their minimum-DFS-code strings (the canonical code already
// stored on every vertex) and full FSG id sets are reconstructed from the
// compressed delIds on load.
//
// Format versions:
//   PRAGUE_INDEX 1 — original format, no snapshot version.
//   PRAGUE_INDEX 2 — adds a "VERSION <v>" line recording the snapshot
//     version the indexes were saved at, so a reloaded database resumes
//     its version sequence instead of restarting at 0.
// The loader accepts both; version-1 files load with snapshot version 0.

#ifndef PRAGUE_INDEX_INDEX_IO_H_
#define PRAGUE_INDEX_INDEX_IO_H_

#include <cstdint>
#include <iosfwd>
#include <string>

#include "index/action_aware_index.h"
#include "util/result.h"
#include "util/status.h"

namespace prague {

/// \brief Indexes plus the snapshot version they were saved at.
struct VersionedIndexes {
  ActionAwareIndexes indexes;
  uint64_t version = 0;
};

/// \brief Serializer/deserializer for ActionAwareIndexes.
class IndexSerializer {
 public:
  /// \brief Writes both indexes in a line-oriented text format, stamping
  /// \p snapshot_version into the header.
  static Status Save(const ActionAwareIndexes& indexes, std::ostream* out,
                     uint64_t snapshot_version = 0);
  /// \brief Writes to a file.
  static Status SaveToFile(const ActionAwareIndexes& indexes,
                           const std::string& path,
                           uint64_t snapshot_version = 0);
  /// \brief Reads both indexes; reconstructs fsgIds from delIds. Drops the
  /// stored snapshot version — use LoadVersioned to keep it.
  static Result<ActionAwareIndexes> Load(std::istream* in);
  /// \brief Reads from a file.
  static Result<ActionAwareIndexes> LoadFromFile(const std::string& path);
  /// \brief Reads both indexes plus the stored snapshot version
  /// (0 for version-1 files).
  static Result<VersionedIndexes> LoadVersioned(std::istream* in);
  /// \brief Reads from a file, keeping the snapshot version.
  static Result<VersionedIndexes> LoadVersionedFromFile(
      const std::string& path);
};

}  // namespace prague

#endif  // PRAGUE_INDEX_INDEX_IO_H_
