// Convenience bundle: mine a database and build both action-aware indexes
// in one call — the offline preprocessing step of GBLENDER/PRAGUE.

#ifndef PRAGUE_INDEX_ACTION_AWARE_INDEX_H_
#define PRAGUE_INDEX_ACTION_AWARE_INDEX_H_

#include "graph/graph_database.h"
#include "index/a2f_index.h"
#include "index/a2i_index.h"
#include "mining/gspan.h"
#include "util/result.h"

namespace prague {

/// \brief The A2F + A2I pair over one database.
struct ActionAwareIndexes {
  A2FIndex a2f;
  A2IIndex a2i;
  MiningStats mining_stats;
  size_t min_support = 0;

  /// \brief Total compressed storage footprint (Table II metric).
  size_t StorageBytes() const {
    return a2f.StorageBytes() + a2i.StorageBytes();
  }
};

/// \brief Mines \p db and builds both indexes.
Result<ActionAwareIndexes> BuildActionAwareIndexes(const GraphDatabase& db,
                                                   const MiningConfig& mining,
                                                   const A2fConfig& a2f);

/// \brief Builds both indexes from an existing mining result.
ActionAwareIndexes BuildActionAwareIndexes(const MiningResult& mined,
                                           const A2fConfig& a2f);

}  // namespace prague

#endif  // PRAGUE_INDEX_ACTION_AWARE_INDEX_H_
