// Maximum connected common subgraph (MCCS) and subgraph distance —
// Definitions 1–3 of the paper.
//
// mccs(G, Q) is the largest *connected* subgraph of Q that is
// subgraph-isomorphic to G. The subgraph similarity degree is
// δ = |mccs(G,Q)| / |Q| and the subgraph distance is ⌊(1 − δ)·|Q|⌋ =
// |Q| − |mccs(G,Q)| — the number of query edges that must be dropped.
//
// This is the paper's "simple verification technique" (VF2 extended to
// MCCS checks): enumerate connected edge subsets of Q from largest to
// smallest, de-duplicate isomorphic subsets by canonical code, and VF2
// each against G until one matches.

#ifndef PRAGUE_GRAPH_MCCS_H_
#define PRAGUE_GRAPH_MCCS_H_

#include <cstddef>

#include "graph/graph.h"
#include "graph/subgraph_ops.h"
#include "util/deadline.h"

namespace prague {

/// \brief Outcome of an MCCS computation.
struct MccsResult {
  /// |mccs(G, Q)| in edges; 0 when not even one query edge matches.
  size_t mccs_edges = 0;
  /// δ = mccs_edges / |Q|.
  double similarity = 0.0;
  /// dist(Q, G) = |Q| − mccs_edges.
  int distance = 0;
  /// One maximal witnessing edge subset of Q (0 when mccs_edges == 0).
  EdgeMask witness = 0;
};

/// \brief Full MCCS between query \p q and data graph \p g.
///
/// Requires q connected with 1 ≤ |q| ≤ kMaxSubsetEdges. With a bounded
/// \p deadline the search may stop early: the result then reflects only
/// the levels fully examined (mccs_edges stays 0 if none matched before
/// the cut) and \p truncated, if non-null, is set.
MccsResult ComputeMccs(const Graph& q, const Graph& g,
                       const Deadline& deadline = Deadline(),
                       bool* truncated = nullptr);

/// \brief Early-exit check: is dist(q, g) ≤ sigma?
///
/// Equivalent to mccs(g, q) ≥ |q| − sigma but stops at the first witness.
/// A deadline cut reports false ("not proven within budget") and sets
/// \p truncated.
bool WithinSubgraphDistance(const Graph& q, const Graph& g, int sigma,
                            const Deadline& deadline = Deadline(),
                            bool* truncated = nullptr);

/// \brief Does \p g contain any connected subgraph of \p q with exactly
/// \p level edges? This is the per-level check SimVerify (Algorithm 5)
/// performs on Rver(level). Deadline semantics as WithinSubgraphDistance.
bool ContainsLevelSubgraph(const Graph& q, const Graph& g, size_t level,
                           const Deadline& deadline = Deadline(),
                           bool* truncated = nullptr);

}  // namespace prague

#endif  // PRAGUE_GRAPH_MCCS_H_
