// GraphDatabase: the set D of data graphs plus the label dictionary that
// maps human-readable label strings (e.g. atom symbols "C", "N", "O") to
// dense Label ids. Panel 2 of the paper's GUI lists exactly these labels.
//
// Data graphs are held through shared_ptr<const Graph>: copying a
// GraphDatabase copies only the pointer vector and the dictionary, sharing
// every graph's storage with the original. Versioned snapshots
// (index/database_snapshot.h) rely on this — a successor database built by
// AppendGraphs shares all pre-existing graphs structurally.

#ifndef PRAGUE_GRAPH_GRAPH_DATABASE_H_
#define PRAGUE_GRAPH_GRAPH_DATABASE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "util/id_set.h"
#include "util/result.h"

namespace prague {

/// \brief Bidirectional map between label strings and dense Label ids.
class LabelDictionary {
 public:
  /// \brief Returns the id for \p name, interning it if new.
  Label Intern(const std::string& name);
  /// \brief Returns the id for \p name, or NotFound if never interned.
  Result<Label> Lookup(const std::string& name) const;
  /// \brief Returns the string for \p label. Requires a valid label.
  const std::string& Name(Label label) const { return names_[label]; }
  /// \brief Bounds-checked Name: the string for \p label, or NotFound for
  /// ids outside the dictionary. Use this on user-facing paths where the
  /// label came from external input (query files, index files).
  Result<std::string> NameOf(Label label) const;
  /// \brief Number of distinct labels.
  size_t size() const { return names_.size(); }
  /// \brief All label names in id order (Panel 2 shows them sorted;
  /// use SortedNames() for that).
  const std::vector<std::string>& names() const { return names_; }
  /// \brief Label names in lexicographic order, as the GUI presents them.
  std::vector<std::string> SortedNames() const;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, Label> ids_;
};

/// \brief The graph database D: data graphs with dense GraphIds.
class GraphDatabase {
 public:
  GraphDatabase() = default;

  /// \brief Adds a data graph; returns its id.
  GraphId Add(Graph g);

  /// \brief Number of data graphs — the paper's |D|.
  size_t size() const { return graphs_.size(); }
  /// \brief True iff no data graphs are present.
  bool empty() const { return graphs_.empty(); }

  /// \brief Data graph by id.
  const Graph& graph(GraphId id) const { return *graphs_[id]; }
  /// \brief Shared ownership of one data graph. Two databases returning
  /// the same pointer share that graph's storage (the structural-sharing
  /// invariant snapshot tests assert).
  const std::shared_ptr<const Graph>& shared_graph(GraphId id) const {
    return graphs_[id];
  }

  /// \brief Mutable label dictionary (generators intern through this).
  LabelDictionary* mutable_labels() { return &labels_; }
  /// \brief The label dictionary.
  const LabelDictionary& labels() const { return labels_; }

  /// \brief The set of all graph ids.
  IdSet AllIds() const { return IdSet::Universe(static_cast<GraphId>(size())); }

  /// \brief Average edge count across data graphs.
  double AverageEdgeCount() const;
  /// \brief Average node count across data graphs.
  double AverageNodeCount() const;
  /// \brief Approximate heap footprint in bytes.
  size_t ByteSize() const;

 private:
  std::vector<std::shared_ptr<const Graph>> graphs_;
  LabelDictionary labels_;
};

}  // namespace prague

#endif  // PRAGUE_GRAPH_GRAPH_DATABASE_H_
