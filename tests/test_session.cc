// PragueSession (Algorithm 1) and GBlenderSession end-to-end behaviour:
// containment flow, automatic similarity fallback, modification
// equivalence, deletion suggestions, and PRAGUE/GBLENDER agreement.

#include <gtest/gtest.h>

#include <map>

#include "core/gblender.h"
#include "core/prague_session.h"
#include "datasets/query_workload.h"
#include "graph/mccs.h"
#include "graph/vf2.h"
#include "test_fixtures.h"

namespace prague {
namespace {

using testing::kC;
using testing::kN;
using testing::kO;
using testing::kS;

// Feeds a query spec into a session; returns the per-step reports.
template <typename Session>
auto Feed(Session* session, const Graph& q,
          const std::vector<EdgeId>& sequence) {
  using Report =
      std::decay_t<decltype(session->AddEdge(0, 0, 0).value())>;
  std::map<NodeId, NodeId> node_map;
  auto user_node = [&](NodeId n) {
    auto it = node_map.find(n);
    if (it != node_map.end()) return it->second;
    NodeId u = session->AddNode(q.NodeLabel(n));
    node_map.emplace(n, u);
    return u;
  };
  std::vector<Report> reports;
  for (EdgeId e : sequence) {
    const Edge& edge = q.GetEdge(e);
    auto report =
        session->AddEdge(user_node(edge.u), user_node(edge.v), edge.label);
    if (!report.ok()) std::abort();
    reports.push_back(*report);
  }
  return reports;
}

IdSet TrueMatches(const GraphDatabase& db, const Graph& q) {
  std::vector<GraphId> ids;
  for (GraphId gid = 0; gid < db.size(); ++gid) {
    if (IsSubgraphIsomorphic(q, db.graph(gid))) ids.push_back(gid);
  }
  return IdSet(std::move(ids));
}

TEST(PragueSessionTest, ContainmentFlowReturnsExactMatches) {
  const auto& fixture = testing::TinyFixture::Get();
  PragueSession session(fixture.snapshot);
  Graph q = testing::MakeGraph({kC, kC, kC, kS},
                               {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  Feed(&session, q, DefaultFormulationSequence(q));
  EXPECT_FALSE(session.similarity_mode());
  RunStats stats;
  Result<QueryResults> results = session.Run(&stats);
  ASSERT_TRUE(results.ok());
  EXPECT_FALSE(results->similarity);
  EXPECT_EQ(IdSet(results->exact), TrueMatches(fixture.db, q));
  EXPECT_GE(stats.srt_seconds, 0.0);
}

TEST(PragueSessionTest, CandidatesAreSoundAtEveryStep) {
  const auto& fixture = testing::TinyFixture::Get();
  PragueSession session(fixture.snapshot);
  Graph q = testing::MakeGraph({kC, kC, kC, kS},
                               {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  std::map<NodeId, NodeId> node_map;
  auto user_node = [&](NodeId n) {
    auto it = node_map.find(n);
    if (it != node_map.end()) return it->second;
    NodeId u = session.AddNode(q.NodeLabel(n));
    node_map.emplace(n, u);
    return u;
  };
  for (EdgeId e : DefaultFormulationSequence(q)) {
    const Edge& edge = q.GetEdge(e);
    ASSERT_TRUE(
        session.AddEdge(user_node(edge.u), user_node(edge.v), edge.label)
            .ok());
    IdSet truth = TrueMatches(fixture.db, session.query().CurrentGraph());
    EXPECT_TRUE(truth.IsSubsetOf(session.exact_candidates()));
  }
}

TEST(PragueSessionTest, AutoSimilarityKicksInWhenRqEmpties) {
  const auto& fixture = testing::TinyFixture::Get();
  PragueSession session(fixture.snapshot);
  // Triangle with an N pendant: no data graph contains it (N only appears
  // in g4, attached to a bare C-C edge).
  Graph q = testing::MakeGraph({kC, kC, kC, kN},
                               {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  auto reports = Feed(&session, q, DefaultFormulationSequence(q));
  EXPECT_TRUE(session.similarity_mode());
  EXPECT_EQ(reports.back().status, FragmentStatus::kNoExactMatch);
  Result<QueryResults> results = session.Run(nullptr);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->similarity);
  // Answers match the brute-force Definition-3 search.
  auto expected = testing::BruteForceSimilaritySearch(fixture.db, q,
                                                      session.sigma());
  std::map<GraphId, int> expected_by_id(expected.begin(), expected.end());
  ASSERT_EQ(results->similar.size(), expected.size());
  for (const SimilarMatch& m : results->similar) {
    ASSERT_TRUE(expected_by_id.contains(m.gid));
    EXPECT_EQ(m.distance, expected_by_id[m.gid]);
  }
}

TEST(PragueSessionTest, RunFallsBackToSimilarityWhenVerificationEmpties) {
  // Rq non-empty but verification yields nothing → Algorithm 1 lines
  // 19-21 must fall back to similarity search. Force it with
  // auto_similarity off and a pathological candidate set: use a query
  // whose candidates are a strict superset of its (empty) answers.
  const auto& fixture = testing::TinyFixture::Get();
  PragueConfig config;
  config.auto_similarity = false;
  config.sigma = 2;
  PragueSession session(fixture.snapshot, config);
  Graph q = testing::MakeGraph({kC, kC, kC, kN},
                               {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  Feed(&session, q, DefaultFormulationSequence(q));
  EXPECT_FALSE(session.similarity_mode());
  Result<QueryResults> results = session.Run(nullptr);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->similarity);
  EXPECT_FALSE(results->similar.empty());
}

TEST(PragueSessionTest, ModificationEquivalentToFromScratch) {
  // Formulate, delete an edge, and compare every candidate set against a
  // fresh session that formulates the reduced query directly.
  const auto& fixture = testing::TinyFixture::Get();
  PragueSession session(fixture.snapshot);
  Graph q = testing::MakeGraph({kC, kC, kC, kS},
                               {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  Feed(&session, q, DefaultFormulationSequence(q));
  // Delete the first deletable edge.
  FormulationId victim = 0;
  for (FormulationId ell : session.query().AliveEdgeIds()) {
    if (session.query().CanDelete(ell)) {
      victim = ell;
      break;
    }
  }
  ASSERT_NE(victim, 0);
  ASSERT_TRUE(session.DeleteEdge(victim).ok());

  // Fresh session over the reduced graph.
  const Graph& reduced = session.query().CurrentGraph();
  PragueSession fresh(fixture.snapshot);
  Feed(&fresh, reduced, DefaultFormulationSequence(reduced));

  EXPECT_EQ(session.exact_candidates(), fresh.exact_candidates());
  Result<QueryResults> a = session.Run(nullptr);
  Result<QueryResults> b = fresh.Run(nullptr);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->exact, b->exact);
  EXPECT_EQ(a->similarity, b->similarity);
}

TEST(PragueSessionTest, SuggestionMaximizesCandidates) {
  const auto& fixture = testing::TinyFixture::Get();
  PragueSession session(fixture.snapshot);
  Graph q = testing::MakeGraph({kC, kC, kC, kN},
                               {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  Feed(&session, q, DefaultFormulationSequence(q));
  std::optional<ModificationSuggestion> suggestion = session.SuggestDeletion();
  ASSERT_TRUE(suggestion.has_value());
  // The suggestion must beat (or tie) every other deletable edge.
  for (FormulationId ell : session.query().AliveEdgeIds()) {
    if (!session.query().CanDelete(ell)) continue;
    FormulationMask mask =
        session.query().FullMask() & ~FormulationBit(ell);
    const SpigVertex* v = session.spigs().FindVertex(mask);
    ASSERT_NE(v, nullptr);
    IdSet rq = ExactSubCandidates(*v, fixture.indexes);
    EXPECT_LE(rq.size(), suggestion->candidates.size());
  }
  // Deleting the suggested edge must give exactly the predicted set.
  ASSERT_TRUE(session.DeleteEdge(suggestion->edge).ok());
  EXPECT_EQ(session.exact_candidates(), suggestion->candidates);
  EXPECT_FALSE(session.exact_candidates().empty());
}

TEST(PragueSessionTest, DeletionRestoresExactMode) {
  const auto& fixture = testing::TinyFixture::Get();
  PragueSession session(fixture.snapshot);
  Graph q = testing::MakeGraph({kC, kC, kC, kN},
                               {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  Feed(&session, q, DefaultFormulationSequence(q));
  EXPECT_TRUE(session.similarity_mode());
  std::optional<ModificationSuggestion> suggestion = session.SuggestDeletion();
  ASSERT_TRUE(suggestion.has_value());
  ASSERT_TRUE(session.DeleteEdge(suggestion->edge).ok());
  // Algorithm 6 lines 15-18: exact matches exist again → exact mode.
  EXPECT_FALSE(session.similarity_mode());
  Result<QueryResults> results = session.Run(nullptr);
  ASSERT_TRUE(results.ok());
  EXPECT_FALSE(results->exact.empty());
}

TEST(PragueSessionTest, EnableSimilarityExplicitly) {
  const auto& fixture = testing::TinyFixture::Get();
  PragueConfig config;
  config.auto_similarity = false;
  PragueSession session(fixture.snapshot, config);
  Graph q = testing::MakeGraph({kC, kS}, {{0, 1}});
  Feed(&session, q, DefaultFormulationSequence(q));
  EXPECT_FALSE(session.similarity_mode());
  ASSERT_TRUE(session.EnableSimilarity().ok());
  EXPECT_TRUE(session.similarity_mode());
  Result<QueryResults> results = session.Run(nullptr);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->similarity);
  // Exact matches appear as distance-0 similarity results.
  IdSet truth = TrueMatches(fixture.db, q);
  size_t zero_distance = 0;
  for (const SimilarMatch& m : results->similar) {
    if (m.distance == 0) {
      ++zero_distance;
      EXPECT_TRUE(truth.Contains(m.gid));
    }
  }
  EXPECT_EQ(zero_distance, truth.size());
}

TEST(PragueSessionTest, RunOnEmptyQueryFails) {
  const auto& fixture = testing::TinyFixture::Get();
  PragueSession session(fixture.snapshot);
  EXPECT_FALSE(session.Run(nullptr).ok());
  EXPECT_FALSE(session.EnableSimilarity().ok());
}

TEST(PragueSessionTest, AddNodeByName) {
  const auto& fixture = testing::TinyFixture::Get();
  PragueSession session(fixture.snapshot);
  Result<NodeId> c = session.AddNodeByName("C");
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(session.AddNodeByName("Zz").ok());
}

TEST(GBlenderSessionTest, AgreesWithPragueOnContainment) {
  const auto& fixture = testing::AidsFixture::Get();
  WorkloadGenerator workload(&fixture.db, 31);
  for (int i = 0; i < 4; ++i) {
    Result<VisualQuerySpec> spec =
        workload.ContainmentQuery(5 + i, "q" + std::to_string(i));
    ASSERT_TRUE(spec.ok());
    PragueSession prg(fixture.snapshot);
    GBlenderSession gbr(fixture.snapshot);
    Feed(&prg, spec->graph, spec->sequence);
    Feed(&gbr, spec->graph, spec->sequence);
    Result<QueryResults> pr = prg.Run(nullptr);
    Result<QueryResults> gr = gbr.Run(nullptr);
    ASSERT_TRUE(pr.ok());
    ASSERT_TRUE(gr.ok());
    EXPECT_EQ(pr->exact, gr->exact) << spec->name;
    EXPECT_FALSE(pr->exact.empty()) << "containment query must match";
  }
}

TEST(GBlenderSessionTest, CandidatesAreSound) {
  const auto& fixture = testing::TinyFixture::Get();
  GBlenderSession session(fixture.snapshot);
  Graph q = testing::MakeGraph({kC, kC, kC, kS},
                               {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  std::map<NodeId, NodeId> node_map;
  auto user_node = [&](NodeId n) {
    auto it = node_map.find(n);
    if (it != node_map.end()) return it->second;
    NodeId u = session.AddNode(q.NodeLabel(n));
    node_map.emplace(n, u);
    return u;
  };
  for (EdgeId e : DefaultFormulationSequence(q)) {
    const Edge& edge = q.GetEdge(e);
    ASSERT_TRUE(
        session.AddEdge(user_node(edge.u), user_node(edge.v), edge.label)
            .ok());
    IdSet truth = TrueMatches(fixture.db, session.query().CurrentGraph());
    EXPECT_TRUE(truth.IsSubsetOf(session.candidates()));
  }
}

TEST(GBlenderSessionTest, DeletionReplaysAndStaysCorrect) {
  const auto& fixture = testing::TinyFixture::Get();
  GBlenderSession session(fixture.snapshot);
  Graph q = testing::MakeGraph({kC, kC, kC, kS},
                               {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  Feed(&session, q, DefaultFormulationSequence(q));
  FormulationId victim = 0;
  for (FormulationId ell : session.query().AliveEdgeIds()) {
    if (session.query().CanDelete(ell)) {
      victim = ell;
      break;
    }
  }
  ASSERT_NE(victim, 0);
  Result<GbrStepReport> report = session.DeleteEdge(victim);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->replayed_steps, 0u);
  IdSet truth = TrueMatches(fixture.db, session.query().CurrentGraph());
  EXPECT_TRUE(truth.IsSubsetOf(session.candidates()));
  Result<QueryResults> results = session.Run(nullptr);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(IdSet(results->exact), truth);
}

}  // namespace
}  // namespace prague
