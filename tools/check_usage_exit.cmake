# Asserts that `praguedb serve` rejects an unknown flag with exit code 2
# (usage error) and prints the usage text on stderr — the contract scripts
# rely on to tell a typo from a runtime failure. Run via
#   cmake -DPRAGUEDB=<binary> -P check_usage_exit.cmake

if(NOT DEFINED PRAGUEDB)
  message(FATAL_ERROR "pass -DPRAGUEDB=<path to praguedb>")
endif()

# Positional args are present (and deliberately nonexistent files) so the
# failure must come from flag validation, which runs before any file I/O.
execute_process(
  COMMAND ${PRAGUEDB} serve nonexistent.db nonexistent.idx
          --definitely-not-a-flag
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
)

if(NOT exit_code EQUAL 2)
  message(FATAL_ERROR
    "expected exit code 2 (usage error), got '${exit_code}'\n"
    "stdout: ${out}\nstderr: ${err}")
endif()

if(NOT err MATCHES "unknown flag '--definitely-not-a-flag'")
  message(FATAL_ERROR "stderr does not name the rejected flag:\n${err}")
endif()

if(NOT err MATCHES "usage:")
  message(FATAL_ERROR "stderr does not contain the usage text:\n${err}")
endif()
