// Observability layer: lock-free counters/gauges/histograms, the metric
// registry with Prometheus exposition, per-run traces, and the engine /
// session-manager instrumentation built on them. The concurrency tests
// here also run under TSan in CI (metrics-sanitizer job); the allocation
// test pins the zero-heap-allocations-per-record contract.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <new>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/prague_session.h"
#include "core/session_manager.h"
#include "datasets/query_workload.h"
#include "obs/labels.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "test_fixtures.h"
#include "util/deadline.h"

// ---------------------------------------------------------------------------
// Global allocation counter: every operator new in the process bumps it,
// so a test can assert that a code region allocates nothing.
//
// The replaced new/delete pair below is malloc/free-based and matched by
// construction; GCC cannot see that when it inlines the operators and
// warns on every delete in the binary, so the check is disabled here.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace prague {
namespace {

using obs::Counter;
using obs::EngineMetrics;
using obs::Gauge;
using obs::Histogram;
using obs::HistogramSnapshot;
using obs::kHistogramBuckets;
using obs::MetricsRegistry;
using obs::RunTally;
using obs::RunTrace;
using obs::TraceRing;
using obs::TraceSpan;
using prague::testing::kC;
using prague::testing::kN;
using prague::testing::kS;

// ---------------------------------------------------------------------------
// Primitives.

TEST(CounterTest, IncrementAndValue) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(GaugeTest, AddSetValue) {
  Gauge g;
  g.Add(5);
  g.Add(-8);
  EXPECT_EQ(g.Value(), -3);
  g.Set(7);
  EXPECT_EQ(g.Value(), 7);
  g.Reset();
  EXPECT_EQ(g.Value(), 0);
}

TEST(HistogramTest, BucketIndexIsLogScale) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  // Everything at or beyond 2^38 lands in the overflow bucket.
  EXPECT_EQ(Histogram::BucketIndex(uint64_t{1} << 38), kHistogramBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex(~uint64_t{0}), kHistogramBuckets - 1);
}

TEST(HistogramTest, BucketBoundsPartitionTheRange) {
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketLowerBound(1), 1u);
  for (size_t i = 1; i + 1 < kHistogramBuckets; ++i) {
    // Adjacent buckets tile without gap or overlap...
    EXPECT_EQ(Histogram::BucketLowerBound(i),
              Histogram::BucketUpperBound(i - 1) + 1);
    // ...and every bucket contains its own bounds.
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketLowerBound(i)), i);
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketUpperBound(i)), i);
  }
}

TEST(HistogramTest, RecordSnapshotQuantile) {
  Histogram h;
  for (uint64_t v : {100u, 200u, 400u, 800u, 1600u}) h.Record(v);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, 3100u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 620.0);
  // Quantiles are bucket-interpolated: exact values are not promised, but
  // they must be monotone and within a factor of two of the true value.
  double p50 = snap.Quantile(0.5);
  double p99 = snap.Quantile(0.99);
  EXPECT_GE(p50, 100.0);
  EXPECT_LE(p50, 800.0);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, 3200.0);
  EXPECT_EQ(HistogramSnapshot().Quantile(0.5), 0.0);
  h.Reset();
  EXPECT_EQ(h.Snapshot().count, 0u);
}

TEST(HistogramTest, MergedShardsEqualSingleHistogram) {
  // Property: merging per-shard snapshots is *exactly* the histogram fed
  // every sample — bucket counts and sums are integers, no rounding.
  std::mt19937_64 rng(7);
  constexpr size_t kShards = 4;
  constexpr size_t kSamples = 20'000;
  Histogram single;
  Histogram shards[kShards];
  std::vector<uint64_t> values;
  values.reserve(kSamples);
  for (size_t i = 0; i < kSamples; ++i) {
    // Log-uniform over the full range, plus some exact zeros.
    uint64_t v = rng() >> (rng() % 64);
    if (i % 97 == 0) v = 0;
    values.push_back(v);
    single.Record(v);
    shards[i % kShards].Record(v);
  }
  HistogramSnapshot merged;
  for (const Histogram& shard : shards) merged.Merge(shard.Snapshot());
  HistogramSnapshot expected = single.Snapshot();
  EXPECT_EQ(merged, expected);
  EXPECT_EQ(merged.count, kSamples);
  EXPECT_DOUBLE_EQ(merged.Quantile(0.5), expected.Quantile(0.5));
  EXPECT_DOUBLE_EQ(merged.Quantile(0.99), expected.Quantile(0.99));
}

TEST(HistogramTest, ConcurrentRecordingLosesNothing) {
  // 8 writers hammering one histogram: relaxed atomics may interleave,
  // but no increment can be lost. This test is the TSan target for the
  // "record from any thread" contract.
  Histogram h;
  Counter c;
  Gauge g;
  constexpr size_t kThreads = 8;
  constexpr uint64_t kPerThread = 50'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h.Record(t * kPerThread + i);
        c.Increment();
        g.Add(i % 2 == 0 ? 1 : -1);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  HistogramSnapshot snap = h.Snapshot();
  constexpr uint64_t kTotal = kThreads * kPerThread;
  EXPECT_EQ(snap.count, kTotal);
  // The values recorded were exactly 0..kTotal-1, once each.
  EXPECT_EQ(snap.sum, kTotal * (kTotal - 1) / 2);
  EXPECT_EQ(c.Value(), kTotal);
  EXPECT_EQ(g.Value(), 0);
}

TEST(HistogramTest, RecordingAllocatesNothing) {
  Histogram h;
  Counter c;
  Gauge g;
  // Warm up (first call can touch lazily-initialized state).
  h.Record(1);
  c.Increment();
  g.Add(1);
  uint64_t before = g_allocations.load();
  for (uint64_t i = 0; i < 10'000; ++i) {
    h.Record(i);
    c.Increment();
    g.Add(1);
  }
  uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u)
      << "metric recording must not touch the heap";
}

// ---------------------------------------------------------------------------
// Registry + Prometheus exposition.

TEST(RegistryTest, GetReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("test_counter");
  Counter* b = registry.GetCounter("test_counter");
  EXPECT_EQ(a, b);
  // Force rebalancing inserts; the original node must not move.
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("filler_" + std::to_string(i));
  }
  EXPECT_EQ(registry.GetCounter("test_counter"), a);
  EXPECT_NE(static_cast<void*>(registry.GetGauge("test_counter")),
            static_cast<void*>(a));
}

TEST(RegistryTest, SnapshotSeesRecordedValues) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Increment(3);
  registry.GetGauge("g")->Set(-5);
  registry.GetHistogram("h")->Record(7);
  obs::RegistrySnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("c"), 3u);
  EXPECT_EQ(snap.gauges.at("g"), -5);
  EXPECT_EQ(snap.histograms.at("h").count, 1u);
  EXPECT_EQ(snap.histograms.at("h").sum, 7u);
  registry.Reset();
  EXPECT_EQ(registry.Snapshot().counters.at("c"), 0u);
}

// Parses `name value` sample lines out of a Prometheus text block.
std::map<std::string, double> ParsePrometheus(const std::string& text) {
  std::map<std::string, double> samples;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    samples[line.substr(0, space)] = std::strtod(line.c_str() + space, nullptr);
  }
  return samples;
}

TEST(RegistryTest, RenderPrometheusIsWellFormed) {
  MetricsRegistry registry;
  registry.GetCounter("demo_ops_total")->Increment(12);
  registry.GetGauge("demo_level")->Set(-2);
  Histogram* h = registry.GetHistogram("demo_latency_us");
  h->Record(0);
  h->Record(3);
  h->Record(500);
  std::string text = registry.RenderPrometheus();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  EXPECT_NE(text.find("# TYPE demo_ops_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE demo_level gauge\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE demo_latency_us histogram\n"),
            std::string::npos);

  std::map<std::string, double> samples = ParsePrometheus(text);
  EXPECT_EQ(samples.at("demo_ops_total"), 12);
  EXPECT_EQ(samples.at("demo_level"), -2);
  EXPECT_EQ(samples.at("demo_latency_us_count"), 3);
  EXPECT_EQ(samples.at("demo_latency_us_sum"), 503);
  EXPECT_EQ(samples.at("demo_latency_us_bucket{le=\"+Inf\"}"), 3);
  // Buckets are cumulative: le="0" sees only the zero sample, le="3"
  // includes both small values, and the +Inf line appears exactly once.
  EXPECT_EQ(samples.at("demo_latency_us_bucket{le=\"0\"}"), 1);
  EXPECT_EQ(samples.at("demo_latency_us_bucket{le=\"3\"}"), 2);
  size_t first = text.find("le=\"+Inf\"");
  EXPECT_EQ(text.find("le=\"+Inf\"", first + 1), std::string::npos);
}

TEST(RegistryTest, GlobalIsSingletonAndRenders) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
  // The engine structs register their metrics on first use.
  EngineMetrics::Get();
  obs::ServerMetrics::Get();
  std::string text = MetricsRegistry::Global().RenderPrometheus();
  EXPECT_NE(text.find("prague_engine_runs_total"), std::string::npos);
  EXPECT_NE(text.find("prague_engine_run_latency_us"), std::string::npos);
  EXPECT_NE(text.find("prague_server_frames_total"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Traces.

TEST(TraceTest, SpanRecordsIntoTrace) {
  RunTrace trace;
  {
    TraceSpan span(&trace, "phase-a");
    double first = span.Stop();
    EXPECT_GE(first, 0.0);
    EXPECT_EQ(span.Stop(), first);  // idempotent
  }
  { TraceSpan span(&trace, "phase-b"); }  // destructor stops
  ASSERT_EQ(trace.spans.size(), 2u);
  EXPECT_STREQ(trace.spans[0].name, "phase-a");
  EXPECT_STREQ(trace.spans[1].name, "phase-b");
  TraceSpan detached(nullptr, "nowhere");  // null trace is a plain timer
  EXPECT_GE(detached.Stop(), 0.0);
}

TEST(TraceTest, ToStringIsOneGreppableLine) {
  RunTrace trace;
  trace.session_tag = 9;
  trace.run_ordinal = 2;
  trace.similarity = true;
  trace.truncated = true;
  trace.deadline_phase = "similar-generation";
  trace.srt_seconds = 0.0125;
  trace.spans.push_back({"exact-verification", 0.004});
  std::string line = trace.ToString();
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_NE(line.find("session=9"), std::string::npos);
  EXPECT_NE(line.find("run#2"), std::string::npos);
  EXPECT_NE(line.find("truncated=1"), std::string::npos);
  EXPECT_NE(line.find("phase=similar-generation"), std::string::npos);
  EXPECT_NE(line.find("exact-verification"), std::string::npos);
}

TEST(TraceTest, RingEvictsOldestFirst) {
  TraceRing ring(3);
  EXPECT_EQ(ring.capacity(), 3u);
  for (uint64_t i = 1; i <= 5; ++i) {
    RunTrace t;
    t.run_ordinal = i;
    ring.Add(std::move(t));
  }
  EXPECT_EQ(ring.total_added(), 5u);
  std::vector<RunTrace> recent = ring.Recent();
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_EQ(recent[0].run_ordinal, 3u);
  EXPECT_EQ(recent[1].run_ordinal, 4u);
  EXPECT_EQ(recent[2].run_ordinal, 5u);
}

// ---------------------------------------------------------------------------
// Engine integration: sessions populate traces, tallies, and the global
// registry; the SRT phase-breakdown invariant holds on every path.

// Feeds a query spec into a session (same idiom as test_session.cc).
template <typename Session>
void Feed(Session* session, const Graph& q) {
  std::map<NodeId, NodeId> node_map;
  auto user_node = [&](NodeId n) {
    auto it = node_map.find(n);
    if (it != node_map.end()) return it->second;
    NodeId u = session->AddNode(q.NodeLabel(n));
    node_map.emplace(n, u);
    return u;
  };
  for (EdgeId e : DefaultFormulationSequence(q)) {
    const Edge& edge = q.GetEdge(e);
    ASSERT_TRUE(
        session->AddEdge(user_node(edge.u), user_node(edge.v), edge.label)
            .ok());
  }
}

// Triangle + pendant S: present in the tiny database but infrequent, so
// Run() takes the real exact-verification path.
Graph VerifiedQuery() {
  return testing::MakeGraph({kC, kC, kC, kS},
                            {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
}

// Triangle + pendant N: no exact match anywhere → similarity mode.
Graph SimilarityQuery() {
  return testing::MakeGraph({kC, kC, kC, kN},
                            {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
}

// The paper's invariant, checked directly on RunStats because assert() is
// compiled out of Release builds: the per-phase breakdown can never claim
// more time than the SRT it decomposes.
void ExpectPhaseBreakdownWithinSrt(const RunStats& stats) {
  EXPECT_LE(
      stats.candidate_seconds + stats.verification_seconds +
          stats.similarity_seconds,
      stats.srt_seconds + 1e-9)
      << "phase breakdown exceeds total SRT";
}

TEST(EngineObservabilityTest, RunPopulatesTraceAndStats) {
  const auto& fixture = testing::TinyFixture::Get();
  uint64_t runs_before = EngineMetrics::Get().runs_total->Value();
  uint64_t latency_before =
      EngineMetrics::Get().run_latency_us->Snapshot().count;
  PragueSession session(fixture.snapshot);
  Feed(&session, VerifiedQuery());
  RunStats stats;
  Result<QueryResults> results = session.Run(&stats);
  ASSERT_TRUE(results.ok());
  EXPECT_FALSE(results->truncated);
  ExpectPhaseBreakdownWithinSrt(stats);

  const RunTrace& trace = session.last_run_trace();
  EXPECT_EQ(trace.run_ordinal, 1u);
  EXPECT_EQ(trace.query_edges, 4u);
  EXPECT_FALSE(trace.similarity);
  EXPECT_FALSE(trace.truncated);
  EXPECT_STREQ(trace.deadline_phase, "none");
  EXPECT_EQ(trace.result_count, results->exact.size());
  EXPECT_DOUBLE_EQ(trace.srt_seconds, stats.srt_seconds);
  // Formulation spans are always present; the verified path adds its own.
  ASSERT_GE(trace.spans.size(), 3u);
  EXPECT_STREQ(trace.spans[0].name, "formulation-spig");
  EXPECT_STREQ(trace.spans[1].name, "formulation-candidates");
  EXPECT_STREQ(trace.spans[2].name, "exact-verification");
  EXPECT_GT(trace.spans[0].seconds, 0.0);

  EXPECT_EQ(session.runs_completed(), 1u);
  EXPECT_EQ(EngineMetrics::Get().runs_total->Value(), runs_before + 1);
  EXPECT_EQ(EngineMetrics::Get().run_latency_us->Snapshot().count,
            latency_before + 1);
}

TEST(EngineObservabilityTest, TruncatedRunKeepsInvariantAndMarksTrace) {
  const auto& fixture = testing::TinyFixture::Get();
  PragueSession session(fixture.snapshot);
  Feed(&session, VerifiedQuery());
  RunStats stats;
  Result<QueryResults> results =
      session.Run(Deadline::AfterMillis(0), &stats);
  ASSERT_TRUE(results.ok());
  ASSERT_TRUE(results->truncated);
  ExpectPhaseBreakdownWithinSrt(stats);
  const RunTrace& trace = session.last_run_trace();
  EXPECT_TRUE(trace.truncated);
  EXPECT_STREQ(trace.deadline_phase, "exact-verification");
}

TEST(EngineObservabilityTest, SimilarityPathsKeepInvariant) {
  const auto& fixture = testing::TinyFixture::Get();
  // Unbounded similarity run.
  PragueSession session(fixture.snapshot);
  Feed(&session, SimilarityQuery());
  ASSERT_TRUE(session.similarity_mode());
  RunStats stats;
  Result<QueryResults> results = session.Run(&stats);
  ASSERT_TRUE(results.ok());
  ExpectPhaseBreakdownWithinSrt(stats);
  const RunTrace& trace = session.last_run_trace();
  EXPECT_TRUE(trace.similarity);
  EXPECT_EQ(trace.result_count, results->similar.size());

  // Truncated similarity run.
  PragueSession bounded(fixture.snapshot);
  Feed(&bounded, SimilarityQuery());
  RunStats cut;
  Result<QueryResults> partial =
      bounded.Run(Deadline::AfterMillis(0), &cut);
  ASSERT_TRUE(partial.ok());
  ASSERT_TRUE(partial->truncated);
  ExpectPhaseBreakdownWithinSrt(cut);
  EXPECT_TRUE(bounded.last_run_trace().truncated);
}

TEST(EngineObservabilityTest, AidsWorkloadKeepsInvariantAcrossBudgets) {
  // Sweep real queries across budgets (unbounded, tight, zero) on the
  // 300-graph fixture: the breakdown must account for at most the SRT on
  // every path, truncated or not.
  const auto& fixture = testing::AidsFixture::Get();
  WorkloadGenerator workload(&fixture.db, 23);
  for (int i = 0; i < 4; ++i) {
    Result<VisualQuerySpec> spec =
        workload.SimilarityQuery(6, 2, "m" + std::to_string(i));
    if (!spec.ok()) continue;
    for (int64_t budget_ms : {-1, 10, 0}) {
      PragueSession session(fixture.snapshot);
      Feed(&session, spec->graph);
      RunStats stats;
      Result<QueryResults> results =
          budget_ms < 0 ? session.Run(&stats)
                        : session.Run(Deadline::AfterMillis(budget_ms),
                                      &stats);
      ASSERT_TRUE(results.ok());
      ExpectPhaseBreakdownWithinSrt(stats);
      EXPECT_EQ(session.last_run_trace().truncated, results->truncated);
    }
  }
}

TEST(SessionManagerObservabilityTest, TallyTracesAndGauge) {
  const auto& fixture = testing::TinyFixture::Get();
  Gauge* open_gauge = EngineMetrics::Get().sessions_open;
  int64_t open_before = open_gauge->Value();
  SessionManager manager(fixture.snapshot);

  SessionManagerStats empty = manager.Stats();
  EXPECT_EQ(empty.runs_served, 0u);
  EXPECT_EQ(empty.runs_truncated, 0u);

  {
    std::shared_ptr<ManagedSession> a = manager.Open();
    std::shared_ptr<ManagedSession> b = manager.Open();
    EXPECT_EQ(open_gauge->Value(), open_before + 2);
    a->With([&](PragueSession& s) {
      Feed(&s, VerifiedQuery());
      ASSERT_TRUE(s.Run(nullptr).ok());
    });
    b->With([&](PragueSession& s) {
      Feed(&s, VerifiedQuery());
      RunStats stats;
      ASSERT_TRUE(s.Run(Deadline::AfterMillis(0), &stats).ok());
      EXPECT_TRUE(stats.truncated);
    });
    SessionManagerStats stats = manager.Stats();
    EXPECT_EQ(stats.runs_served, 2u);
    EXPECT_EQ(stats.runs_truncated, 1u);
  }
  // Sessions closed: the gauge returns to its baseline, the tally stays.
  EXPECT_EQ(open_gauge->Value(), open_before);
  SessionManagerStats after = manager.Stats();
  EXPECT_EQ(after.open_sessions, 0u);
  EXPECT_EQ(after.runs_served, 2u);
  EXPECT_EQ(after.runs_truncated, 1u);

  // Both runs landed in the shared trace ring, tagged with their session
  // ids, oldest first.
  std::vector<RunTrace> traces = manager.traces().Recent();
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].session_tag, 1u);
  EXPECT_FALSE(traces[0].truncated);
  EXPECT_EQ(traces[1].session_tag, 2u);
  EXPECT_TRUE(traces[1].truncated);
}

// ---------------------------------------------------------------------------
// Labeled families: bounded cardinality, the "other" overflow series, and
// callback metrics evaluated at Snapshot() time.

TEST(LabeledMetricsTest, InternedSeriesHaveStablePointers) {
  MetricsRegistry registry;
  obs::LabeledCounter* family =
      registry.GetLabeledCounter("tenants_total", "tenant", 4);
  Counter* acme = family->WithLabel("acme");
  acme->Increment(3);
  EXPECT_EQ(family->WithLabel("acme"), acme);  // same pointer on re-lookup
  EXPECT_EQ(registry.GetLabeledCounter("tenants_total", "tenant"), family);
  EXPECT_EQ(acme->Value(), 3u);
}

TEST(LabeledMetricsTest, CardinalityIsBoundedByMaxSeries) {
  MetricsRegistry registry;
  obs::LabeledCounter* family =
      registry.GetLabeledCounter("bounded_total", "tenant", 3);
  // The first three distinct values intern; everything after shares one
  // overflow series, so a tenant-name flood cannot blow up the scrape.
  family->WithLabel("a")->Increment();
  family->WithLabel("b")->Increment();
  family->WithLabel("c")->Increment();
  Counter* d = family->WithLabel("d");
  Counter* e = family->WithLabel("e");
  EXPECT_EQ(d, e);  // both land on "other"
  d->Increment();
  e->Increment();
  // A literal "other" label is the overflow series too — no way to mint a
  // series that shadows the sentinel.
  EXPECT_EQ(family->WithLabel(obs::kOverflowLabelValue), d);

  std::vector<std::pair<std::string, uint64_t>> series = family->Series();
  ASSERT_EQ(series.size(), 4u);  // a, b, c, other
  uint64_t other_value = 0;
  for (const auto& [label, value] : series) {
    if (label == obs::kOverflowLabelValue) other_value = value;
  }
  EXPECT_EQ(other_value, 2u);
}

TEST(LabeledMetricsTest, LiteralOtherNeverCountsTowardCardinality) {
  MetricsRegistry registry;
  obs::LabeledCounter* family =
      registry.GetLabeledCounter("literal_other_total", "tenant", 2);
  Counter* other = family->WithLabel(obs::kOverflowLabelValue);
  other->Increment();
  // Both real slots are still free after touching "other".
  Counter* a = family->WithLabel("a");
  Counter* b = family->WithLabel("b");
  EXPECT_NE(a, other);
  EXPECT_NE(b, other);
  EXPECT_EQ(family->WithLabel("c"), other);  // now full: c overflows
}

TEST(LabeledMetricsTest, RenderGroupsSeriesUnderOneTypeLine) {
  MetricsRegistry registry;
  obs::LabeledCounter* family =
      registry.GetLabeledCounter("grouped_total", "tenant", 4);
  family->WithLabel("acme")->Increment(2);
  family->WithLabel("bob")->Increment(5);
  obs::LabeledHistogram* lat =
      registry.GetLabeledHistogram("grouped_latency_us", "tenant", 4);
  lat->WithLabel("acme")->Record(10);
  lat->WithLabel("acme")->Record(1000);

  std::string text = obs::RenderPrometheusText(registry.Snapshot());
  // Exactly one TYPE line per family, preceding all of its samples.
  size_t type_pos = text.find("# TYPE grouped_total counter\n");
  ASSERT_NE(type_pos, std::string::npos);
  EXPECT_EQ(text.find("# TYPE grouped_total", type_pos + 1),
            std::string::npos);
  size_t acme_pos = text.find("grouped_total{tenant=\"acme\"} 2\n");
  size_t bob_pos = text.find("grouped_total{tenant=\"bob\"} 5\n");
  ASSERT_NE(acme_pos, std::string::npos);
  ASSERT_NE(bob_pos, std::string::npos);
  EXPECT_GT(acme_pos, type_pos);
  EXPECT_GT(bob_pos, type_pos);

  // Labeled histograms render per-series buckets plus _sum/_count with the
  // tenant label alongside le.
  EXPECT_NE(text.find("# TYPE grouped_latency_us histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("grouped_latency_us_bucket{tenant=\"acme\",le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("grouped_latency_us_count{tenant=\"acme\"} 2"),
            std::string::npos);
}

TEST(LabeledMetricsTest, LabelValuesAreEscapedInExposition) {
  EXPECT_EQ(obs::EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(obs::EscapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::EscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::EscapeLabelValue("a\nb"), "a\\nb");

  MetricsRegistry registry;
  registry.GetLabeledCounter("escaped_total", "tenant", 4)
      ->WithLabel("we\"ird\\name")
      ->Increment();
  std::string text = obs::RenderPrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("escaped_total{tenant=\"we\\\"ird\\\\name\"} 1"),
            std::string::npos);
}

TEST(CallbackMetricsTest, EvaluatedAtSnapshotTime) {
  MetricsRegistry registry;
  std::atomic<uint64_t> pulled{7};
  registry.RegisterCallbackCounter("pulled_total",
                                   [&pulled] { return pulled.load(); });
  registry.RegisterCallbackGauge("depth",
                                 [] { return static_cast<int64_t>(-3); });
  obs::RegistrySnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("pulled_total"), 7u);
  EXPECT_EQ(snap.gauges.at("depth"), -3);
  pulled.store(9);  // a later snapshot sees the new value, no re-registering
  EXPECT_EQ(registry.Snapshot().counters.at("pulled_total"), 9u);
  std::string text = obs::RenderPrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("pulled_total 9\n"), std::string::npos);
}

TEST(CallbackMetricsTest, GlobalRegistryExportsLogSuppression) {
  // prague_log_suppressed_total is a callback over the logging module's
  // process-wide counter; it must appear in the global exposition.
  std::string text = obs::RenderPrometheusText(
      MetricsRegistry::Global().Snapshot());
  EXPECT_NE(text.find("# TYPE prague_log_suppressed_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("prague_log_suppressed_total "), std::string::npos);
}


}  // namespace
}  // namespace prague
