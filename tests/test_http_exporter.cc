// The embedded HTTP exporter (obs/http_exporter.h), exercised with raw
// sockets the way curl / Prometheus / a kubelet would: the full operator
// lifecycle (start -> open/run traffic -> durable append -> checkpoint ->
// shutdown) with every endpoint answering at each stage, plus protocol
// edges — keep-alive, Connection: close, 404/405, readiness flips, and
// the oversized-request guillotine.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/session_manager.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "server/prague_client.h"
#include "server/prague_server.h"
#include "storage/fs_util.h"
#include "storage/storage_engine.h"
#include "test_fixtures.h"
#include "test_storage_util.h"

namespace prague {
namespace {

using storage::JoinPath;
using storage::StorageEngine;

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/prague_http_" + name;
  Result<std::vector<std::string>> files = storage::ListDir(dir);
  if (files.ok()) {
    for (const std::string& f : *files) {
      (void)storage::RemoveFile(JoinPath(dir, f));
    }
  }
  if (!storage::EnsureDir(dir).ok()) std::abort();
  return dir;
}

// ---------------------------------------------------------------------------
// A minimal blocking HTTP client: one fd, hand-written request lines.

int ConnectTo(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0)
      << strerror(errno);
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

std::string RecvUntilClose(int fd) {
  std::string out;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  return out;
}

// One full request/response with "Connection: close"; returns the raw
// response (status line + headers + body).
std::string HttpGet(uint16_t port, const std::string& path,
                    const std::string& method = "GET") {
  int fd = ConnectTo(port);
  std::string request = method + " " + path +
                        " HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n";
  EXPECT_TRUE(SendAll(fd, request));
  std::string response = RecvUntilClose(fd);
  ::close(fd);
  return response;
}

std::string StatusLineOf(const std::string& response) {
  size_t eol = response.find("\r\n");
  return eol == std::string::npos ? response : response.substr(0, eol);
}

std::string BodyOf(const std::string& response) {
  size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? std::string() : response.substr(split + 4);
}

// Reads exactly one response off a keep-alive connection, using the
// Content-Length header to know where it ends.
std::string RecvOneResponse(int fd) {
  std::string buf;
  char chunk[4096];
  size_t header_end = std::string::npos;
  size_t content_length = 0;
  for (;;) {
    if (header_end == std::string::npos) {
      header_end = buf.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        header_end += 4;
        size_t pos = buf.find("Content-Length:");
        EXPECT_NE(pos, std::string::npos) << buf;
        content_length = static_cast<size_t>(
            std::strtoull(buf.c_str() + pos + 15, nullptr, 10));
      }
    }
    if (header_end != std::string::npos &&
        buf.size() >= header_end + content_length) {
      std::string response = buf.substr(0, header_end + content_length);
      return response;
    }
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return buf;
    buf.append(chunk, static_cast<size_t>(n));
  }
}

// ---------------------------------------------------------------------------

TEST(HttpExporterTest, ServesDefaultsWithNoHooks) {
  obs::HttpExporter exporter;  // port 0, no hooks
  ASSERT_TRUE(exporter.Start().ok());
  ASSERT_NE(exporter.port(), 0);
  EXPECT_TRUE(exporter.running());

  std::string health = HttpGet(exporter.port(), "/healthz");
  EXPECT_NE(StatusLineOf(health).find("200"), std::string::npos);
  EXPECT_EQ(BodyOf(health), "ok\n");

  // Null hooks degrade safely: ready, empty status, empty traces.
  EXPECT_EQ(BodyOf(HttpGet(exporter.port(), "/readyz")), "ready\n");
  std::string traces = BodyOf(HttpGet(exporter.port(), "/tracez"));
  EXPECT_NE(traces.find("\"traces\""), std::string::npos);

  // A query string does not defeat routing.
  std::string probed = HttpGet(exporter.port(), "/healthz?verbose=1");
  EXPECT_NE(StatusLineOf(probed).find("200"), std::string::npos);

  EXPECT_GE(exporter.requests_served(), 4u);
  exporter.Stop();
  exporter.Stop();  // idempotent
  EXPECT_FALSE(exporter.running());
}

TEST(HttpExporterTest, UnknownPathAndNonGetAreRejected) {
  obs::HttpExporter exporter;
  ASSERT_TRUE(exporter.Start().ok());
  EXPECT_NE(StatusLineOf(HttpGet(exporter.port(), "/nope")).find("404"),
            std::string::npos);
  EXPECT_NE(
      StatusLineOf(HttpGet(exporter.port(), "/metrics", "POST")).find("405"),
      std::string::npos);
  exporter.Stop();
}

TEST(HttpExporterTest, ReadyzReflectsTheHook) {
  std::atomic<bool> ready{false};
  obs::HttpExporterHooks hooks;
  hooks.ready = [&ready] { return ready.load(); };
  obs::HttpExporter exporter({}, hooks);
  ASSERT_TRUE(exporter.Start().ok());

  std::string not_ready = HttpGet(exporter.port(), "/readyz");
  EXPECT_NE(StatusLineOf(not_ready).find("503"), std::string::npos);
  EXPECT_EQ(BodyOf(not_ready), "unavailable\n");

  ready.store(true);
  std::string now_ready = HttpGet(exporter.port(), "/readyz");
  EXPECT_NE(StatusLineOf(now_ready).find("200"), std::string::npos);
  EXPECT_EQ(BodyOf(now_ready), "ready\n");
  exporter.Stop();
}

TEST(HttpExporterTest, KeepAliveServesPipelinedRequestsOnOneConnection) {
  obs::HttpExporter exporter;
  ASSERT_TRUE(exporter.Start().ok());
  int fd = ConnectTo(exporter.port());

  // Two requests, neither closing: both answered on the same socket.
  ASSERT_TRUE(SendAll(fd, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"));
  std::string first = RecvOneResponse(fd);
  EXPECT_NE(StatusLineOf(first).find("200"), std::string::npos);
  EXPECT_EQ(BodyOf(first), "ok\n");

  ASSERT_TRUE(SendAll(fd, "GET /readyz HTTP/1.1\r\nHost: t\r\n\r\n"));
  std::string second = RecvOneResponse(fd);
  EXPECT_EQ(BodyOf(second), "ready\n");

  // The third asks to close; the server flushes then disconnects.
  ASSERT_TRUE(SendAll(
      fd, "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"));
  std::string third = RecvUntilClose(fd);
  EXPECT_EQ(BodyOf(third), "ok\n");
  ::close(fd);
  exporter.Stop();
}

TEST(HttpExporterTest, OversizedRequestIsDisconnected) {
  obs::HttpExporterOptions options;
  options.max_request_bytes = 128;
  obs::HttpExporter exporter(options);
  ASSERT_TRUE(exporter.Start().ok());
  int fd = ConnectTo(exporter.port());
  // Headers that never end and blow past the cap: the exporter drops the
  // connection rather than buffering without bound.
  std::string flood = "GET /healthz HTTP/1.1\r\nX-Pad: ";
  flood.append(512, 'a');
  ASSERT_TRUE(SendAll(fd, flood));
  char buf[64];
  EXPECT_LE(::recv(fd, buf, sizeof(buf), 0), 0);  // EOF or reset, no reply
  ::close(fd);
  exporter.Stop();
}

// ---------------------------------------------------------------------------
// The acceptance lifecycle: a durable server with watchdog and exporter
// wired the way `praguedb serve --http-port` does it, scraped at every
// stage from start through append and checkpoint to shutdown.

TEST(HttpExporterLifecycleTest, AllEndpointsAnswerThroughServeAppendCheckpoint) {
  std::string dir = FreshDir("lifecycle");
  SnapshotPtr initial = testing::MakeTinySnapshot();
  Result<std::unique_ptr<StorageEngine>> boot =
      StorageEngine::Bootstrap(dir, *initial, testing::kStorageAlpha);
  ASSERT_TRUE(boot.ok()) << boot.status().ToString();
  std::shared_ptr<StorageEngine> engine = std::move(*boot);

  SessionManager manager(engine->recovered().snapshot);
  manager.AttachStorage(engine);

  obs::Watchdog watchdog;
  watchdog.set_trace_ring(&manager.mutable_traces());

  PragueServerOptions options;
  options.port = 0;
  options.worker_threads = 4;
  options.watchdog = &watchdog;
  PragueServer server(&manager, options);
  ASSERT_TRUE(server.Start().ok());
  watchdog.Start();

  obs::HttpExporterHooks hooks;
  hooks.ready = [&server, &manager] {
    return server.running() && manager.current() != nullptr;
  };
  hooks.statusz_json = [&manager] {
    SessionManagerStats stats = manager.Stats();
    return std::string("{\"snapshot_version\":") +
           std::to_string(stats.current_version) +
           ",\"durable\":" + (stats.durable ? "true" : "false") + "}";
  };
  hooks.traces = [&manager] { return manager.traces().Recent(); };
  obs::HttpExporter exporter({}, hooks);
  ASSERT_TRUE(exporter.Start().ok());
  const uint16_t http_port = exporter.port();

  // Stage 1: freshly started. Probes answer, status reports durability.
  EXPECT_EQ(BodyOf(HttpGet(http_port, "/healthz")), "ok\n");
  EXPECT_EQ(BodyOf(HttpGet(http_port, "/readyz")), "ready\n");
  std::string statusz = BodyOf(HttpGet(http_port, "/statusz"));
  EXPECT_NE(statusz.find("\"durable\":true"), std::string::npos);

  // Stage 2: wire traffic from a tenant, so labeled series exist.
  PragueClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.Open(-1, "acme-http").ok());
  ASSERT_TRUE(client.AddEdge(1, "C", 2, "S").ok());
  Result<RunReply> run = client.Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  std::string metrics_response = HttpGet(http_port, "/metrics");
  EXPECT_NE(StatusLineOf(metrics_response).find("200"), std::string::npos);
  EXPECT_NE(metrics_response.find("text/plain; version=0.0.4"),
            std::string::npos);
  std::string metrics = BodyOf(metrics_response);
  EXPECT_NE(metrics.find("# TYPE prague_server_tenant_admitted_total counter"),
            std::string::npos);
  EXPECT_NE(metrics.find(
                "prague_server_tenant_admitted_total{tenant=\"acme-http\"}"),
            std::string::npos);
  EXPECT_NE(
      metrics.find("prague_server_tenant_run_latency_us_bucket{"),
      std::string::npos);
  // The exporter's own self-observation is part of the exposition too.
  EXPECT_NE(metrics.find("prague_http_requests_total"), std::string::npos);
  EXPECT_NE(metrics.find("prague_watchdog_ticks_total"), std::string::npos);

  // /tracez carries the run the client just executed.
  std::string traces = BodyOf(HttpGet(http_port, "/tracez"));
  EXPECT_NE(traces.find("\"run\":1"), std::string::npos);
  EXPECT_NE(traces.find("\"spans\":["), std::string::npos);

  // Stage 3: a durable append advances the snapshot under the scraper.
  ASSERT_TRUE(manager
                  .Append(testing::BatchForVersion(1),
                          testing::StorageMaintenanceOptions())
                  .ok());
  statusz = BodyOf(HttpGet(http_port, "/statusz"));
  EXPECT_NE(statusz.find("\"snapshot_version\":1"), std::string::npos);
  EXPECT_EQ(BodyOf(HttpGet(http_port, "/readyz")), "ready\n");

  // Stage 4: checkpoint; still serving, still ready.
  ASSERT_TRUE(manager.Checkpoint().ok());
  EXPECT_EQ(BodyOf(HttpGet(http_port, "/healthz")), "ok\n");
  EXPECT_NE(StatusLineOf(HttpGet(http_port, "/metrics")).find("200"),
            std::string::npos);

  // Stage 5: shutdown in the documented order (exporter, server, watchdog).
  client.Close();
  exporter.Stop();
  server.Stop();
  watchdog.Stop();
  EXPECT_FALSE(exporter.running());
}

}  // namespace
}  // namespace prague
