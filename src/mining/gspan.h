// gSpan frequent-fragment mining (Yan & Han [13]) with per-fragment FSG id
// sets, plus discriminative infrequent fragment (DIF) extraction — the
// offline step both GBLENDER and PRAGUE run before any query arrives
// (Section III).
//
// Definitions (paper, Section III):
//  * fragment g is frequent iff sup(g) ≥ α·|D|;
//  * an infrequent fragment g is a DIF iff every proper (connected)
//    subgraph of g is frequent, or |g| = 1;
//  * fsgIds(g) is the exact set of data-graph ids containing g.

#ifndef PRAGUE_MINING_GSPAN_H_
#define PRAGUE_MINING_GSPAN_H_

#include <cstddef>
#include <string>
#include <vector>

#include "graph/canonical.h"
#include "graph/graph.h"
#include "graph/graph_database.h"
#include "util/id_set.h"
#include "util/result.h"

namespace prague {

/// \brief Mining parameters.
struct MiningConfig {
  /// α — minimum support threshold as a fraction of |D| (0 < α < 1).
  double min_support_ratio = 0.1;
  /// Pattern-growth cap in edges. Visual queries never exceed ~10 edges
  /// (Section VIII), so fragments beyond this size are never probed.
  size_t max_fragment_edges = 10;
  /// Whether to extract DIFs (A2I construction needs them).
  bool mine_difs = true;
};

/// \brief One mined fragment with its exact FSG ids.
struct MinedFragment {
  Graph graph;
  CanonicalCode code;
  IdSet fsg_ids;
  /// Embedding count per containing graph, parallel to fsg_ids.span().
  /// (Feature-count filters — Grafil/SIGMA — need these.)
  std::vector<uint32_t> embedding_counts;

  /// sup(g) = |D_g|.
  size_t support() const { return fsg_ids.size(); }
  /// |g| in edges.
  size_t size() const { return graph.EdgeCount(); }
  /// Embeddings of this fragment in data graph \p gid (0 if absent).
  uint32_t EmbeddingCount(GraphId gid) const;
};

/// \brief Counters describing one mining run.
struct MiningStats {
  size_t frequent_count = 0;
  size_t dif_count = 0;
  size_t infrequent_candidates = 0;  // infrequent extensions examined
  size_t pruned_non_minimal = 0;     // duplicate growth paths pruned
  double elapsed_seconds = 0;
};

/// \brief Result of MineFragments.
struct MiningResult {
  std::vector<MinedFragment> frequent;  // F, in min-DFS-code growth order
  std::vector<MinedFragment> difs;      // I_d, ascending by size
  size_t min_support = 0;               // ⌈α·|D|⌉ (at least 1)
  MiningStats stats;
};

/// \brief Mines frequent fragments and DIFs from \p db.
///
/// Fails with InvalidArgument for an empty database or a ratio outside
/// (0, 1).
Result<MiningResult> MineFragments(const GraphDatabase& db,
                                   const MiningConfig& config);

}  // namespace prague

#endif  // PRAGUE_MINING_GSPAN_H_
