#include "core/results.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <unordered_set>

#include "graph/verifier.h"
#include "graph/vf2.h"

namespace prague {

std::vector<GraphId> ExactVerification(const Graph& q, const IdSet& rq,
                                       const GraphDatabase& db,
                                       ThreadPool* pool) {
  const std::vector<GraphId>& ids = rq.ids();
  if (pool == nullptr || pool->size() <= 1) {
    std::vector<GraphId> out;
    for (GraphId gid : ids) {
      if (IsSubgraphIsomorphic(q, db.graph(gid))) out.push_back(gid);
    }
    return out;
  }
  std::vector<char> hit(ids.size(), 0);
  pool->ParallelFor(ids.size(), /*min_chunk=*/16,
                    [&](size_t begin, size_t end) {
                      for (size_t i = begin; i < end; ++i) {
                        hit[i] = IsSubgraphIsomorphic(q, db.graph(ids[i]));
                      }
                    });
  std::vector<GraphId> out;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (hit[i]) out.push_back(ids[i]);
  }
  return out;
}

namespace {

// Distinct (by canonical code) level-i query subgraphs, pulled from the
// SPIG set — the union of level-i vertices across SPIGs is exactly the set
// of connected i-edge subgraphs of q.
std::vector<const Graph*> DistinctLevelFragments(const SpigSet& spigs,
                                                 int level) {
  std::vector<const Graph*> out;
  std::unordered_set<CanonicalCode> seen;
  spigs.ForEachVertexAtLevel(level, [&](const Spig&, const SpigVertex& v) {
    if (seen.insert(v.code).second) out.push_back(&v.fragment);
  });
  return out;
}

// SimVerify for one data graph at one level: mccs(g, q) ≥ level?
bool SimVerify(const std::vector<const Graph*>& level_fragments,
               const Graph& g, SimilarGenStats* stats,
               Verifier* verifier) {
  for (const Graph* fragment : level_fragments) {
    size_t before = verifier->stats().vf2_calls;
    bool hit = verifier->Matches(*fragment, g);
    if (stats != nullptr) {
      stats->vf2_calls += verifier->stats().vf2_calls - before;
    }
    if (hit) return true;
  }
  return false;
}

}  // namespace

std::vector<SimilarMatch> SimilarResultsGen(
    const Graph& q, const SpigSet& spigs, const SimilarCandidates& cands,
    int sigma, const GraphDatabase& db, const IdSet* exact_rq,
    SimilarGenStats* stats, size_t top_k, ThreadPool* pool,
    bool filtering_verifier) {
  std::unique_ptr<Verifier> verifier =
      MakeVerifier(filtering_verifier ? "filtering" : "plain");
  std::vector<SimilarMatch> results;
  IdSet seen;
  int qsize = static_cast<int>(q.EdgeCount());
  auto full = [&]() { return top_k != 0 && results.size() >= top_k; };

  if (exact_rq != nullptr && !exact_rq->empty()) {
    for (GraphId gid : ExactVerification(q, *exact_rq, db, pool)) {
      if (full()) return results;
      results.push_back(SimilarMatch{gid, 0, true});
      seen.Insert(gid);
      if (stats != nullptr) ++stats->verified;
    }
  }

  int lowest = std::max(1, qsize - sigma);
  for (int level = qsize - 1; level >= lowest && !full(); --level) {
    int distance = qsize - level;
    auto free_it = cands.free.find(level);
    if (free_it != cands.free.end()) {
      for (GraphId gid : free_it->second.Subtract(seen)) {
        if (full()) return results;
        results.push_back(SimilarMatch{gid, distance, false});
        seen.Insert(gid);
        if (stats != nullptr) ++stats->verification_free;
      }
    }
    auto ver_it = cands.ver.find(level);
    if (ver_it != cands.ver.end()) {
      IdSet pending = ver_it->second.Subtract(seen);
      if (!pending.empty()) {
        std::vector<const Graph*> fragments =
            DistinctLevelFragments(spigs, level);
        const std::vector<GraphId>& ids = pending.ids();
        if (pool != nullptr && pool->size() > 1 && ids.size() > 16) {
          // Parallel MCCS checks; appended in id order afterwards so the
          // output matches the sequential path exactly.
          std::vector<char> verdict(ids.size(), 0);
          std::atomic<size_t> vf2_calls{0};
          pool->ParallelFor(
              ids.size(), /*min_chunk=*/8, [&](size_t begin, size_t end) {
                // Verifier caches are not shared across threads; each
                // chunk gets its own (fragment summaries are recomputed
                // once per chunk, which is cheap).
                std::unique_ptr<Verifier> local_verifier = MakeVerifier(
                    filtering_verifier ? "filtering" : "plain");
                SimilarGenStats local;
                for (size_t i = begin; i < end; ++i) {
                  verdict[i] = SimVerify(fragments, db.graph(ids[i]),
                                         &local, local_verifier.get());
                }
                vf2_calls += local.vf2_calls;
              });
          if (stats != nullptr) stats->vf2_calls += vf2_calls.load();
          for (size_t i = 0; i < ids.size(); ++i) {
            if (full()) return results;
            if (verdict[i]) {
              results.push_back(SimilarMatch{ids[i], distance, true});
              seen.Insert(ids[i]);
              if (stats != nullptr) ++stats->verified;
            } else if (stats != nullptr) {
              ++stats->rejected;
            }
          }
        } else {
          for (GraphId gid : ids) {
            if (full()) return results;
            if (SimVerify(fragments, db.graph(gid), stats,
                          verifier.get())) {
              results.push_back(SimilarMatch{gid, distance, true});
              seen.Insert(gid);
              if (stats != nullptr) ++stats->verified;
            } else if (stats != nullptr) {
              ++stats->rejected;
            }
          }
        }
      }
    }
  }
  return results;
}

}  // namespace prague
