#include "server/prague_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace prague {

PragueClient::~PragueClient() { Disconnect(); }

Status PragueClient::Connect(const std::string& host, uint16_t port) {
  if (connected()) {
    return Status::FailedPrecondition("client already connected");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse host '" + host +
                                   "' (use an IPv4 address or 'localhost')");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Status::IOError("connect to " + host + ":" +
                                std::to_string(port) + ": " +
                                std::strerror(errno));
    ::close(fd);
    return st;
  }
  // Commands are tiny; without TCP_NODELAY, Nagle + delayed ACK holds a
  // frame sent right behind another (Run then Cancel) in the kernel for
  // tens of milliseconds.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  {
    std::lock_guard<std::mutex> lock(demux_mu_);
    reader_active_ = false;
    outstanding_.clear();
    ready_.clear();
    stream_error_ = Status::OK();
    next_request_id_ = 0;
  }
  fd_ = fd;
  return Status::OK();
}

void PragueClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status PragueClient::Send(const WireCommand& command) {
  if (!connected()) return Status::FailedPrecondition("not connected");
  std::lock_guard<std::mutex> lock(write_mu_);
  return SendFrame(fd_, FrameType::kRequest, FormatCommand(command));
}

void PragueClient::RegisterOutstanding(uint64_t id) {
  std::lock_guard<std::mutex> lock(demux_mu_);
  outstanding_.insert(id);
}

uint64_t PragueClient::NextRequestId() {
  std::lock_guard<std::mutex> lock(demux_mu_);
  return ++next_request_id_;
}

Result<std::string> PragueClient::WaitReply(uint64_t id) {
  std::unique_lock<std::mutex> lock(demux_mu_);
  for (;;) {
    auto it = ready_.find(id);
    if (it != ready_.end()) {
      std::string payload = std::move(it->second);
      ready_.erase(it);
      outstanding_.erase(id);
      return payload;
    }
    if (!stream_error_.ok()) {
      outstanding_.erase(id);
      return stream_error_;
    }
    if (reader_active_) {
      // Someone else is on the socket; they will park our reply (or the
      // stream error) and notify.
      demux_cv_.wait(lock);
      continue;
    }
    // Take the reader lease and read one frame unlocked.
    reader_active_ = true;
    lock.unlock();
    Result<WireFrame> frame = RecvFrame(fd_);
    Status err = Status::OK();
    uint64_t got_id = 0;
    std::string payload;
    if (!frame.ok()) {
      err = frame.status();
    } else if (frame->type != FrameType::kResponse) {
      err = Status::Corruption("expected a response frame");
    } else {
      Result<std::pair<uint64_t, std::string_view>> split =
          SplitFrameId(frame->payload);
      if (!split.ok()) {
        err = split.status();
      } else {
        got_id = split->first;
        payload = std::string(split->second);
      }
    }
    lock.lock();
    reader_active_ = false;
    if (err.ok() && outstanding_.find(got_id) == outstanding_.end()) {
      // The peer broke the pairing rules: a well-formed reply arrived for
      // a request that was never issued (or was already answered). The
      // bytes are fine, so this is a ProtocolError, not Corruption — and
      // the stream is out of sync, so it poisons the connection.
      err = Status::ProtocolError(
          (got_id != 0 ? "reply carries request id " + std::to_string(got_id)
                       : std::string("reply carries no request id")) +
          " but no such request is outstanding");
    }
    if (!err.ok()) {
      stream_error_ = err;
      demux_cv_.notify_all();
      continue;  // the loop head returns stream_error_
    }
    ready_[got_id] = std::move(payload);
    demux_cv_.notify_all();
    // Loop: the parked reply may be ours.
  }
}

Result<std::string> PragueClient::RoundTrip(const WireCommand& command) {
  RegisterOutstanding(command.request_id);
  Status st = Send(command);
  if (!st.ok()) {
    std::lock_guard<std::mutex> lock(demux_mu_);
    outstanding_.erase(command.request_id);
    return st;
  }
  return WaitReply(command.request_id);
}

Result<OpenReply> PragueClient::Open(int64_t timeout_ms,
                                     const std::string& tenant) {
  WireCommand cmd;
  cmd.kind = CommandKind::kOpen;
  cmd.timeout_ms = timeout_ms;
  cmd.tenant = tenant;
  PRAGUE_ASSIGN_OR_RETURN(std::string payload, RoundTrip(cmd));
  PRAGUE_ASSIGN_OR_RETURN(OpenReply reply, ParseOpenReply(payload));
  session_id_ = reply.session_id;
  session_version_ = reply.version;
  return reply;
}

Result<StepReply> PragueClient::AddEdge(uint32_t u, const std::string& u_label,
                                        uint32_t v, const std::string& v_label,
                                        Label edge_label) {
  WireCommand cmd;
  cmd.kind = CommandKind::kAddEdge;
  cmd.u = u;
  cmd.u_label = u_label;
  cmd.v = v;
  cmd.v_label = v_label;
  cmd.edge_label = edge_label;
  PRAGUE_ASSIGN_OR_RETURN(std::string payload, RoundTrip(cmd));
  return ParseStepReply(payload);
}

Result<StepReply> PragueClient::DeleteEdge(uint32_t u, uint32_t v) {
  WireCommand cmd;
  cmd.kind = CommandKind::kDeleteEdge;
  cmd.u = u;
  cmd.v = v;
  PRAGUE_ASSIGN_OR_RETURN(std::string payload, RoundTrip(cmd));
  return ParseStepReply(payload);
}

Result<RunReply> PragueClient::Run(uint64_t limit) {
  WireCommand cmd;
  cmd.kind = CommandKind::kRun;
  cmd.limit = limit;
  PRAGUE_ASSIGN_OR_RETURN(std::string payload, RoundTrip(cmd));
  return ParseRunReply(payload);
}

Status PragueClient::Cancel() {
  WireCommand cmd;
  cmd.kind = CommandKind::kCancel;
  return Send(cmd);  // no reply by design — see wire.h
}

Result<uint64_t> PragueClient::StartRun(uint64_t limit) {
  if (!connected()) return Status::FailedPrecondition("not connected");
  WireCommand cmd;
  cmd.kind = CommandKind::kRun;
  cmd.limit = limit;
  cmd.request_id = NextRequestId();
  RegisterOutstanding(cmd.request_id);
  Status st = Send(cmd);
  if (!st.ok()) {
    std::lock_guard<std::mutex> lock(demux_mu_);
    outstanding_.erase(cmd.request_id);
    return st;
  }
  return cmd.request_id;
}

Result<RunReply> PragueClient::WaitRun(uint64_t id) {
  PRAGUE_ASSIGN_OR_RETURN(std::string payload, WaitReply(id));
  return ParseRunReply(payload);
}

Status PragueClient::CancelRun(uint64_t id) {
  if (id == 0) return Status::InvalidArgument("request id must be >= 1");
  WireCommand cmd;
  cmd.kind = CommandKind::kCancel;
  cmd.cancel_id = id;
  return Send(cmd);  // no reply by design — see wire.h
}

Result<uint64_t> PragueClient::StartBatchRun(
    const std::vector<std::string>& patterns, uint64_t limit) {
  if (!connected()) return Status::FailedPrecondition("not connected");
  if (patterns.empty() || patterns.size() > kMaxBatchPatterns) {
    return Status::InvalidArgument(
        "BATCH_RUN takes between 1 and " + std::to_string(kMaxBatchPatterns) +
        " patterns, got " + std::to_string(patterns.size()));
  }
  WireCommand cmd;
  cmd.kind = CommandKind::kBatchRun;
  cmd.limit = limit;
  cmd.batch_patterns = patterns;
  cmd.request_id = NextRequestId();
  RegisterOutstanding(cmd.request_id);
  Status st = Send(cmd);
  if (!st.ok()) {
    std::lock_guard<std::mutex> lock(demux_mu_);
    outstanding_.erase(cmd.request_id);
    return st;
  }
  return cmd.request_id;
}

Result<BatchRunReply> PragueClient::WaitBatchRun(uint64_t id) {
  PRAGUE_ASSIGN_OR_RETURN(std::string payload, WaitReply(id));
  return ParseBatchRunReply(payload);
}

Result<BatchRunReply> PragueClient::BatchRun(
    const std::vector<std::string>& patterns, uint64_t limit) {
  PRAGUE_ASSIGN_OR_RETURN(uint64_t id, StartBatchRun(patterns, limit));
  return WaitBatchRun(id);
}

Result<AppendReply> PragueClient::Append(
    const std::vector<std::string>& patterns, double alpha, int reclassify) {
  if (!connected()) return Status::FailedPrecondition("not connected");
  if (patterns.empty() || patterns.size() > kMaxBatchPatterns) {
    return Status::InvalidArgument(
        "APPEND takes between 1 and " + std::to_string(kMaxBatchPatterns) +
        " graphs, got " + std::to_string(patterns.size()));
  }
  WireCommand cmd;
  cmd.kind = CommandKind::kAppend;
  cmd.batch_patterns = patterns;
  cmd.append_alpha = alpha;
  cmd.append_reclassify = reclassify;
  PRAGUE_ASSIGN_OR_RETURN(std::string payload, RoundTrip(cmd));
  return ParseAppendReply(payload);
}

Result<StatsReply> PragueClient::Stats() {
  WireCommand cmd;
  cmd.kind = CommandKind::kStats;
  PRAGUE_ASSIGN_OR_RETURN(std::string payload, RoundTrip(cmd));
  return ParseStatsReply(payload);
}

Result<std::string> PragueClient::Metrics() {
  WireCommand cmd;
  cmd.kind = CommandKind::kMetrics;
  PRAGUE_ASSIGN_OR_RETURN(std::string payload, RoundTrip(cmd));
  return ParseMetricsReply(payload);
}

Status PragueClient::Close() {
  WireCommand cmd;
  cmd.kind = CommandKind::kClose;
  Result<std::string> payload = RoundTrip(cmd);
  Disconnect();
  if (!payload.ok()) return payload.status();
  return DecodeReplyStatus(*payload);
}

}  // namespace prague
