#include "util/id_set.h"

#include <algorithm>

namespace prague {

namespace {

// Per-thread output buffer for the in-place operations: the result is
// built here and swapped into place, recycling capacity across calls.
std::vector<GraphId>& ScratchBuffer() {
  thread_local std::vector<GraphId> scratch;
  return scratch;
}

const std::vector<GraphId>& EmptyVec() {
  static const std::vector<GraphId> empty;
  return empty;
}

// Galloping intersection: for each id of the small side, exponential
// search forward through the large side from the previous match position.
void GallopIntersect(const std::vector<GraphId>& small,
                     const std::vector<GraphId>& large,
                     std::vector<GraphId>* out) {
  const size_t n = large.size();
  size_t pos = 0;
  for (GraphId id : small) {
    size_t lo = pos;
    size_t step = 1;
    while (lo + step < n && large[lo + step] < id) {
      lo += step;
      step <<= 1;
    }
    size_t hi = std::min(n, lo + step + 1);
    pos = static_cast<size_t>(
        std::lower_bound(large.begin() + static_cast<ptrdiff_t>(lo),
                         large.begin() + static_cast<ptrdiff_t>(hi), id) -
        large.begin());
    if (pos == n) return;
    if (large[pos] == id) {
      out->push_back(id);
      ++pos;
    }
  }
}

// Intersection of two sorted vectors into `out` (cleared first), picking
// merge vs gallop by size ratio.
void IntersectInto(const std::vector<GraphId>& a,
                   const std::vector<GraphId>& b,
                   std::vector<GraphId>* out) {
  out->clear();
  const std::vector<GraphId>& small = a.size() <= b.size() ? a : b;
  const std::vector<GraphId>& large = a.size() <= b.size() ? b : a;
  if (small.empty()) return;
  out->reserve(small.size());
  if (large.size() / small.size() >= IdSet::kGallopRatio) {
    GallopIntersect(small, large, out);
  } else {
    std::set_intersection(small.begin(), small.end(), large.begin(),
                          large.end(), std::back_inserter(*out));
  }
}

}  // namespace

IdSet::IdSet(std::vector<GraphId> ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  if (!ids.empty()) {
    data_ = std::make_shared<std::vector<GraphId>>(std::move(ids));
  }
}

IdSet::IdSet(std::initializer_list<GraphId> ids)
    : IdSet(std::vector<GraphId>(ids)) {}

IdSet IdSet::FromSorted(std::vector<GraphId> ids) {
  IdSet out;
  if (!ids.empty()) {
    out.data_ = std::make_shared<std::vector<GraphId>>(std::move(ids));
  }
  return out;
}

const std::vector<GraphId>& IdSet::ids() const {
  return data_ ? *data_ : EmptyVec();
}

std::vector<GraphId>& IdSet::Mutable() {
  if (!data_) {
    data_ = std::make_shared<std::vector<GraphId>>();
  } else if (data_.use_count() > 1) {
    data_ = std::make_shared<std::vector<GraphId>>(*data_);
  }
  return *data_;
}

void IdSet::AdoptScratch(std::vector<GraphId>* scratch) {
  if (scratch->empty()) {
    data_.reset();
  } else if (data_ && data_.use_count() == 1) {
    data_->swap(*scratch);
  } else {
    data_ = std::make_shared<std::vector<GraphId>>(scratch->begin(),
                                                   scratch->end());
  }
}

IdSet IdSet::Universe(GraphId n) {
  std::vector<GraphId> ids(n);
  for (GraphId i = 0; i < n; ++i) ids[i] = i;
  return FromSorted(std::move(ids));
}

bool IdSet::Contains(GraphId id) const {
  const std::vector<GraphId>& v = ids();
  return std::binary_search(v.begin(), v.end(), id);
}

void IdSet::Insert(GraphId id) {
  if (Contains(id)) return;
  std::vector<GraphId>& v = Mutable();
  v.insert(std::lower_bound(v.begin(), v.end(), id), id);
}

void IdSet::Erase(GraphId id) {
  if (!Contains(id)) return;
  std::vector<GraphId>& v = Mutable();
  auto it = std::lower_bound(v.begin(), v.end(), id);
  if (it != v.end() && *it == id) v.erase(it);
}

IdSet IdSet::Intersect(const IdSet& other) const {
  std::vector<GraphId> out;
  IntersectInto(ids(), other.ids(), &out);
  return FromSorted(std::move(out));
}

IdSet IdSet::Union(const IdSet& other) const {
  if (empty()) return other;
  if (other.empty()) return *this;
  std::vector<GraphId> out;
  out.reserve(size() + other.size());
  std::set_union(begin(), end(), other.begin(), other.end(),
                 std::back_inserter(out));
  return FromSorted(std::move(out));
}

IdSet IdSet::Subtract(const IdSet& other) const {
  if (empty() || other.empty()) return *this;
  std::vector<GraphId> out;
  out.reserve(size());
  std::set_difference(begin(), end(), other.begin(), other.end(),
                      std::back_inserter(out));
  return FromSorted(std::move(out));
}

void IdSet::IntersectWith(const IdSet& other) {
  std::vector<GraphId>& scratch = ScratchBuffer();
  IntersectInto(ids(), other.ids(), &scratch);
  AdoptScratch(&scratch);
}

void IdSet::UnionWith(const IdSet& other) {
  if (other.empty()) return;
  if (empty()) {
    data_ = other.data_;  // structural share
    return;
  }
  std::vector<GraphId>& scratch = ScratchBuffer();
  scratch.clear();
  scratch.reserve(size() + other.size());
  std::set_union(begin(), end(), other.begin(), other.end(),
                 std::back_inserter(scratch));
  AdoptScratch(&scratch);
}

void IdSet::SubtractWith(const IdSet& other) {
  if (empty() || other.empty()) return;
  std::vector<GraphId>& scratch = ScratchBuffer();
  scratch.clear();
  scratch.reserve(size());
  std::set_difference(begin(), end(), other.begin(), other.end(),
                      std::back_inserter(scratch));
  AdoptScratch(&scratch);
}

IdSet IdSet::IntersectMany(std::vector<const IdSet*> sets) {
  sets.erase(std::remove(sets.begin(), sets.end(), nullptr), sets.end());
  if (sets.empty()) return IdSet();
  std::sort(sets.begin(), sets.end(), [](const IdSet* a, const IdSet* b) {
    return a->size() < b->size();
  });
  IdSet out = *sets.front();
  for (size_t i = 1; i < sets.size() && !out.empty(); ++i) {
    out.IntersectWith(*sets[i]);
  }
  return out;
}

bool IdSet::IsSubsetOf(const IdSet& other) const {
  return std::includes(other.begin(), other.end(), begin(), end());
}

IdSet IdSet::Slice(GraphId begin, GraphId end) const {
  if (empty() || begin >= end) return IdSet();
  const std::vector<GraphId>& v = ids();
  if (v.front() >= begin && v.back() < end) return *this;  // shares buffer
  auto lo = std::lower_bound(v.begin(), v.end(), begin);
  auto hi = std::lower_bound(lo, v.end(), end);
  if (lo == hi) return IdSet();
  return FromSorted(std::vector<GraphId>(lo, hi));
}

std::string IdSet::ToString() const {
  const std::vector<GraphId>& v = ids();
  std::string out = "{";
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(v[i]);
  }
  out += "}";
  return out;
}

}  // namespace prague
