// StorageEngine: the durable face of one data directory.
//
// The engine owns the directory's manifest, its current WAL writer, and
// the mapping of the checkpointed segment. The write path is
// log-then-publish: SessionManager::Append builds the successor snapshot,
// calls LogAppend (which returns only after the record is fsync-durable —
// group commit batches concurrent callers under one fsync), and only then
// publishes the successor to sessions. A crash at any point therefore
// loses no acknowledged append: either the record is in the WAL and
// replays on open, or the append was never acknowledged.
//
// Checkpoint(snapshot) bounds recovery time: it writes a fresh segment at
// the snapshot's version, starts an empty WAL, atomically repoints the
// manifest, and deletes the superseded files. The manifest rename is the
// commit point; files a crash strands outside the manifest are swept on
// the next Open. See docs/STORAGE.md for the full protocol and its
// crash-window analysis.

#ifndef PRAGUE_STORAGE_STORAGE_ENGINE_H_
#define PRAGUE_STORAGE_STORAGE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>

#include "index/database_snapshot.h"
#include "storage/manifest.h"
#include "storage/recovery.h"
#include "storage/segment.h"
#include "storage/wal.h"
#include "util/result.h"
#include "util/status.h"

namespace prague::storage {

/// \brief Durability knobs.
struct StorageOptions {
  /// fsync the WAL before acknowledging each append. Turning this off
  /// trades crash-durability of the newest appends for latency (the
  /// bench_server durability sweep measures the gap).
  bool sync = true;
  /// Verify posting-region checksums when opening segments.
  bool verify_postings_crc = false;
};

/// \brief Point-in-time durability statistics.
struct StorageStats {
  uint64_t wal_bytes = 0;
  uint64_t wal_appends = 0;
  uint64_t wal_syncs = 0;
  uint64_t segment_bytes = 0;
  uint64_t posting_bytes = 0;
  /// Snapshot version of the live segment (the WAL watermark).
  uint64_t last_checkpoint_version = 0;
  /// WAL records replayed when this engine opened.
  uint64_t recovery_replayed_records = 0;
  /// True when open dropped a torn WAL tail.
  bool wal_tail_dropped = false;
};

/// \brief One open data directory. Thread-safe: LogAppend may be called
/// from many threads (they share fsyncs); Checkpoint serializes against
/// appends internally.
class StorageEngine {
 public:
  /// \brief True iff \p dir has been bootstrapped (manifest present).
  static bool Exists(const std::string& dir);

  /// \brief Initializes an empty data directory from \p initial: writes
  /// its segment, an empty WAL, and the manifest, then opens the result.
  /// Fails if \p dir is already bootstrapped.
  static Result<std::unique_ptr<StorageEngine>> Bootstrap(
      const std::string& dir, const DatabaseSnapshot& initial, double alpha,
      const StorageOptions& options = {});

  /// \brief Opens an existing data directory: maps the segment, replays
  /// the WAL tail (recover()), sweeps orphaned files.
  static Result<std::unique_ptr<StorageEngine>> Open(
      const std::string& dir, const StorageOptions& options = {});

  /// \brief The state recovered at open time (snapshot, replay counts).
  /// The engine does not track snapshots published after open; callers
  /// (SessionManager) own the live chain.
  const RecoveredState& recovered() const { return recovered_; }

  /// \brief Durably logs one append batch. Returns once the record is on
  /// stable storage (options.sync) or buffered (otherwise). Safe to call
  /// concurrently; concurrent callers share fsyncs (group commit).
  Status LogAppend(const AppendPayload& payload);

  /// \brief Forces all buffered WAL records to stable storage.
  Status SyncWal();

  /// \brief Checkpoints \p snapshot: new segment + fresh WAL + manifest
  /// repoint + old-file removal. \p alpha is recorded in the manifest (the
  /// mining ratio the snapshot's indexes were built with). No-op when the
  /// snapshot version is already checkpointed.
  Status Checkpoint(const DatabaseSnapshot& snapshot, double alpha);

  /// \brief Current durability statistics.
  StorageStats Stats() const;

  const std::string& dir() const { return dir_; }

 private:
  StorageEngine(std::string dir, StorageOptions options,
                RecoveredState recovered, Manifest manifest,
                std::unique_ptr<WalWriter> wal, uint64_t segment_bytes,
                uint64_t posting_bytes);

  /// Removes every regular file the manifest does not name (interrupted
  /// checkpoints strand segments/WALs/temp files; the sweep is safe at any
  /// time because the manifest is the only source of truth).
  static void SweepOrphans(const std::string& dir, const Manifest& manifest);

  const std::string dir_;
  const StorageOptions options_;
  const RecoveredState recovered_;

  /// Shared: LogAppend/Stats use the current WAL writer. Unique:
  /// Checkpoint swaps writer + manifest.
  mutable std::shared_mutex rotate_mu_;
  Manifest manifest_;
  std::unique_ptr<WalWriter> wal_;
  uint64_t segment_bytes_ = 0;
  uint64_t posting_bytes_ = 0;
};

}  // namespace prague::storage

#endif  // PRAGUE_STORAGE_STORAGE_ENGINE_H_
