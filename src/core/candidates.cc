#include "core/candidates.h"

namespace prague {

IdSet ExactSubCandidates(const SpigVertex& v,
                         const ActionAwareIndexes& indexes) {
  if (v.frag.freq_id) return indexes.a2f.FsgIds(*v.frag.freq_id);
  if (v.frag.dif_id) return indexes.a2i.FsgIds(*v.frag.dif_id);
  // NIF: intersect the FSG ids of every recorded frequent (|g|−1)-subgraph
  // and every recorded DIF subgraph.
  if (v.frag.phi.empty() && v.frag.upsilon.empty()) {
    return IdSet();  // zero-support subgraph (see header)
  }
  bool first = true;
  IdSet out;
  for (A2fId fid : v.frag.phi) {
    if (first) {
      out = indexes.a2f.FsgIds(fid);
      first = false;
    } else {
      out.IntersectWith(indexes.a2f.FsgIds(fid));
    }
  }
  for (A2iId did : v.frag.upsilon) {
    if (first) {
      out = indexes.a2i.FsgIds(did);
      first = false;
    } else {
      out.IntersectWith(indexes.a2i.FsgIds(did));
    }
  }
  return out;
}

size_t SimilarCandidates::TotalCandidates() const {
  return AllFree().Union(AllVer()).size();
}

IdSet SimilarCandidates::AllFree() const {
  IdSet out;
  for (const auto& [level, ids] : free) out.UnionWith(ids);
  return out;
}

IdSet SimilarCandidates::AllVer() const {
  IdSet out;
  for (const auto& [level, ids] : ver) out.UnionWith(ids);
  return out;
}

SimilarCandidates SimilarSubCandidates(const SpigSet& spigs,
                                       size_t query_size, int sigma,
                                       const ActionAwareIndexes& indexes) {
  SimilarCandidates out;
  int q = static_cast<int>(query_size);
  int lowest = std::max(1, q - sigma);
  for (int level = q - 1; level >= lowest; --level) {
    IdSet free_ids;
    IdSet ver_ids;
    spigs.ForEachVertexAtLevel(
        level, [&](const Spig&, const SpigVertex& v) {
          if (v.frag.IsFrequent() || v.frag.IsDif()) {
            free_ids.UnionWith(ExactSubCandidates(v, indexes));
          } else {
            ver_ids.UnionWith(ExactSubCandidates(v, indexes));
          }
        });
    ver_ids.SubtractWith(free_ids);  // Algorithm 4 line 7
    out.free.emplace(level, std::move(free_ids));
    out.ver.emplace(level, std::move(ver_ids));
  }
  return out;
}

}  // namespace prague
